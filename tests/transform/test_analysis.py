"""Tests for the pipelining analysis (paper Sec. III-A)."""

import pytest

from repro.ir import (
    Buffer,
    ForKind,
    IRBuilder,
    Kernel,
    Scope,
)
from repro.schedule import TileConfig
from repro.transform import TransformError, analyze

from .conftest import build_kernel


def pipelined_cfg(smem=3, reg=2):
    return TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=smem, reg_stages=reg)


class TestHintCollection:
    def test_no_hints_empty_plan(self):
        kernel, _ = build_kernel()
        assert analyze(kernel).groups == []

    def test_hints_found(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        plan = analyze(kernel)
        buffers = {m.buffer.name for g in plan.groups for m in g.members}
        assert buffers == {"A_shared", "B_shared", "A_reg", "B_reg"}

    def test_stage_counts(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg(4, 2))
        plan = analyze(kernel)
        by_scope = {g.scope: g.stages for g in plan.groups}
        assert by_scope[Scope.SHARED] == 4
        assert by_scope[Scope.REGISTER] == 2


class TestProducerConsumer:
    def test_producer_buffers(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        plan = analyze(kernel)
        producers = {m.buffer.name: m.producer_buffer.name for g in plan.groups for m in g.members}
        assert producers["A_shared"] == "A"
        assert producers["A_reg"] == "A_shared"

    def test_multi_level_parent_link(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        plan = analyze(kernel)
        smem = next(g for g in plan.groups if g.scope is Scope.SHARED)
        reg = next(g for g in plan.groups if g.scope is Scope.REGISTER)
        assert reg.parent is smem
        assert smem.child is reg
        assert smem.parent is None

    def test_single_level_no_parent(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg(3, 1))
        plan = analyze(kernel)
        assert len(plan.groups) == 1
        assert plan.groups[0].parent is None and plan.groups[0].child is None


class TestSequentialLoop:
    def test_loops_identified(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        plan = analyze(kernel)
        loop_vars = {g.scope: g.loop_var.name for g in plan.groups}
        assert loop_vars == {Scope.SHARED: "ko", Scope.REGISTER: "ki"}

    def test_extents(self):
        kernel, _ = build_kernel(k=64, cfg=pipelined_cfg())
        plan = analyze(kernel)
        by_scope = {g.scope: g.loop_extent for g in plan.groups}
        assert by_scope[Scope.SHARED] == 64 // 16
        assert by_scope[Scope.REGISTER] == 16 // 8

    def test_groups_ordered_outermost_first(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        plan = analyze(kernel)
        assert [g.scope for g in plan.groups] == [Scope.SHARED, Scope.REGISTER]


class TestHandBuiltIR:
    """The pass must work on IRs that never went through our lowering."""

    def _simple(self, stages=2, is_async=True, extent=4, kind=ForKind.SERIAL, read=True):
        A = Buffer("A", (64, 16))
        out_b = Buffer("O", (64, 16))
        sh = Buffer("sh", (16, 16), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": stages}):
            with b.for_loop("t", extent, kind=kind) as t:
                b.copy(sh.full_region(), A.region((t * 16, 16), (0, 16)), is_async=is_async)
                if read:
                    b.copy(out_b.region((t * 16, 16), (0, 16)), sh.full_region())
        return Kernel("hand", [A, out_b], b.finish())

    def test_simple_ok(self):
        plan = analyze(self._simple())
        assert len(plan.groups) == 1
        assert plan.groups[0].loop_var.name == "t"

    def test_sync_copy_rejected(self):
        with pytest.raises(TransformError, match="asynchronous"):
            analyze(self._simple(is_async=False))

    def test_extent_one_rejected(self):
        with pytest.raises(TransformError, match="extent 1"):
            analyze(self._simple(extent=1))

    def test_parallel_loop_rejected(self):
        with pytest.raises(TransformError, match="sequential load-and-use"):
            analyze(self._simple(kind=ForKind.THREAD))

    def test_never_read_rejected(self):
        with pytest.raises(TransformError, match="never read"):
            analyze(self._simple(read=False))

    def test_two_producer_copies_rejected(self):
        A = Buffer("A", (64, 16))
        out_b = Buffer("O", (64, 16))
        sh = Buffer("sh", (16, 16), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": 2}):
            with b.serial_for("t", 4) as t:
                b.copy(sh.region((0, 8), (0, 16)), A.region((t * 16, 8), (0, 16)), is_async=True)
                b.copy(sh.region((8, 8), (0, 16)), A.region((t * 16 + 8, 8), (0, 16)),
                       is_async=True)
                b.copy(out_b.region((t * 16, 16), (0, 16)), sh.full_region())
        with pytest.raises(TransformError, match="exactly one"):
            analyze(Kernel("hand", [A, out_b], b.finish()))

    def test_read_outside_loop_rejected(self):
        A = Buffer("A", (64, 16))
        out_b = Buffer("O", (64, 16))
        sh = Buffer("sh", (16, 16), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": 2}):
            with b.serial_for("t", 4) as t:
                b.copy(sh.full_region(), A.region((t * 16, 16), (0, 16)), is_async=True)
                b.copy(out_b.region((t * 16, 16), (0, 16)), sh.full_region())
            b.copy(out_b.region((0, 16), (0, 16)), sh.full_region())  # read after loop
        with pytest.raises(TransformError, match="outside its load-and-use loop"):
            analyze(Kernel("hand", [A, out_b], b.finish()))

    def test_mismatched_stages_same_scope_rejected(self):
        A = Buffer("A", (64, 16))
        out_b = Buffer("O", (64, 16))
        sh1 = Buffer("sh1", (16, 16), scope=Scope.SHARED)
        sh2 = Buffer("sh2", (16, 16), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh1, attrs={"pipeline_stages": 2}):
            with b.allocate(sh2, attrs={"pipeline_stages": 3}):
                with b.serial_for("t", 4) as t:
                    b.copy(sh1.full_region(), A.region((t * 16, 16), (0, 16)), is_async=True)
                    b.copy(sh2.full_region(), A.region((t * 16, 16), (0, 16)), is_async=True)
                    b.copy(out_b.region((t * 16, 16), (0, 16)), sh1.full_region())
                    b.copy(out_b.region((t * 16, 16), (0, 16)), sh2.full_region())
        with pytest.raises(TransformError, match="different\\s+stage counts|different stage"):
            analyze(Kernel("hand", [A, out_b], b.finish()))

    def test_same_scope_different_loops_rejected(self):
        A = Buffer("A", (64, 16))
        out_b = Buffer("O", (64, 16))
        sh1 = Buffer("sh1", (16, 16), scope=Scope.SHARED)
        sh2 = Buffer("sh2", (16, 16), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh1, attrs={"pipeline_stages": 2}):
            with b.allocate(sh2, attrs={"pipeline_stages": 2}):
                with b.serial_for("t", 4) as t:
                    b.copy(sh1.full_region(), A.region((t * 16, 16), (0, 16)), is_async=True)
                    b.copy(out_b.region((t * 16, 16), (0, 16)), sh1.full_region())
                with b.serial_for("u", 4) as u:
                    b.copy(sh2.full_region(), A.region((u * 16, 16), (0, 16)), is_async=True)
                    b.copy(out_b.region((u * 16, 16), (0, 16)), sh2.full_region())
        with pytest.raises(TransformError, match="different loops"):
            analyze(Kernel("hand", [A, out_b], b.finish()))

    def test_already_pipelined_rejected(self):
        kernel, _ = build_kernel(cfg=pipelined_cfg())
        from repro.transform import apply_pipelining

        once = apply_pipelining(kernel)
        with pytest.raises(TransformError, match="already been pipelined"):
            analyze(once)

"""Differential fuzzing of the pipelining pass on non-GEMM streaming IRs.

The pass must be correct for *any* load-and-use structure, not just the
canonical GEMM lowering. These tests generate random streaming programs —
multiple shared buffers, varying tile counts, stage counts, interleaved
compute — run the untransformed IR eagerly and the transformed IR under
strict pipeline semantics, and require bit-identical outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import run_kernel
from repro.ir import Buffer, IRBuilder, Kernel, Scope, validate_kernel
from repro.transform import apply_pipelining


def _scale_fn(factor):
    def fn(out, src):
        out[...] = src * factor

    return fn


def build_streaming_kernel(n_tiles, tile, stages, n_buffers, with_compute):
    """O[t] = sum of staged copies of the inputs (optionally scaled)."""
    inputs = [Buffer(f"I{i}", (n_tiles * tile,)) for i in range(n_buffers)]
    out = Buffer("O", (n_tiles * tile,), dtype="float32")
    shs = [Buffer(f"sh{i}", (tile,), scope=Scope.SHARED) for i in range(n_buffers)]
    acc = Buffer("acc", (tile,), dtype="float32", scope=Scope.ACCUMULATOR)

    def add_into(out_v, *ins):
        out_v[...] = sum(x.astype(np.float32) for x in ins)

    b = IRBuilder()
    ctxs = [b.allocate(sh, attrs={"pipeline_stages": stages}) for sh in shs]
    for c in ctxs:
        c.__enter__()
    with b.allocate(acc):
        with b.serial_for("t", n_tiles) as t:
            for inp, sh in zip(inputs, shs):
                b.copy(sh.full_region(), inp.region((t * tile, tile)), is_async=True)
            if with_compute:
                b.compute(
                    "reduce",
                    acc.full_region(),
                    [sh.full_region() for sh in shs],
                    fn=add_into,
                    flops=tile,
                    accumulate=False,
                )
                b.copy(out.region((t * tile, tile)), acc.full_region())
            else:
                b.copy(out.region((t * tile, tile)), shs[0].full_region())
    for c in reversed(ctxs):
        c.__exit__(None, None, None)
    return Kernel("stream_fuzz", inputs + [out], b.finish())


@settings(max_examples=30, deadline=None)
@given(
    n_tiles=st.integers(2, 7),
    tile=st.sampled_from([4, 8]),
    stages=st.integers(2, 5),
    n_buffers=st.integers(1, 3),
    with_compute=st.booleans(),
    seed=st.integers(0, 5),
)
def test_streaming_differential(n_tiles, tile, stages, n_buffers, with_compute, seed):
    if not with_compute:
        n_buffers = 1  # without the reduce, extra buffers would be dead stores
    kernel = build_streaming_kernel(n_tiles, tile, stages, n_buffers, with_compute)
    validate_kernel(kernel)
    transformed = apply_pipelining(kernel)
    validate_kernel(transformed)

    rng = np.random.default_rng(seed)
    inputs = {
        f"I{i}": rng.standard_normal(n_tiles * tile).astype(np.float16)
        for i in range(n_buffers)
    }
    ref = run_kernel(kernel, inputs, mode="eager")["O"]
    got = run_kernel(transformed, inputs, mode="pipeline")["O"]
    np.testing.assert_array_equal(ref, got)


@settings(max_examples=10, deadline=None)
@given(n_tiles=st.integers(2, 5), stages=st.integers(2, 4))
def test_streaming_group_structure(n_tiles, stages):
    """Same-scope buffers in one loop must form one barrier group."""
    kernel = build_streaming_kernel(n_tiles, 4, stages, n_buffers=2, with_compute=True)
    transformed = apply_pipelining(kernel)
    groups = transformed.attrs["pipeline_groups"]
    assert len(groups) == 1
    assert groups[0].stages == stages
    assert len(groups[0].buffers) == 2

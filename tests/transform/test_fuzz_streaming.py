"""Differential fuzzing of the pipelining pass on non-GEMM streaming IRs.

The pass must be correct for *any* load-and-use structure, not just the
canonical GEMM lowering. These tests generate random streaming programs —
multiple shared buffers, varying tile counts, stage counts, interleaved
compute — run the untransformed IR eagerly and the transformed IR under
strict pipeline semantics, and require bit-identical outputs.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import run_kernel
from repro.ir import (
    Allocate,
    Buffer,
    BufferRegion,
    For,
    ForKind,
    IRBuilder,
    IfThenElse,
    IntImm,
    Kernel,
    MemCopy,
    PipelineSync,
    Scope,
    SeqStmt,
    Stmt,
    SyncKind,
    Var,
    floormod,
    validate_kernel,
)
from repro.ir.analysis import walk_with_path
from repro.ir.syncheck import (
    RULE_PROLOGUE_SHORTFALL,
    RULE_READ_BEFORE_ARRIVAL,
    RULE_STAGE_ALIAS,
    RULE_UNBALANCED_SYNC,
    RULE_UNGUARDED_COPY,
    check_kernel,
)
from repro.transform import apply_pipelining


def _scale_fn(factor):
    def fn(out, src):
        out[...] = src * factor

    return fn


def build_streaming_kernel(n_tiles, tile, stages, n_buffers, with_compute):
    """O[t] = sum of staged copies of the inputs (optionally scaled)."""
    inputs = [Buffer(f"I{i}", (n_tiles * tile,)) for i in range(n_buffers)]
    out = Buffer("O", (n_tiles * tile,), dtype="float32")
    shs = [Buffer(f"sh{i}", (tile,), scope=Scope.SHARED) for i in range(n_buffers)]
    acc = Buffer("acc", (tile,), dtype="float32", scope=Scope.ACCUMULATOR)

    def add_into(out_v, *ins):
        out_v[...] = sum(x.astype(np.float32) for x in ins)

    b = IRBuilder()
    ctxs = [b.allocate(sh, attrs={"pipeline_stages": stages}) for sh in shs]
    for c in ctxs:
        c.__enter__()
    with b.allocate(acc):
        with b.serial_for("t", n_tiles) as t:
            for inp, sh in zip(inputs, shs):
                b.copy(sh.full_region(), inp.region((t * tile, tile)), is_async=True)
            if with_compute:
                b.compute(
                    "reduce",
                    acc.full_region(),
                    [sh.full_region() for sh in shs],
                    fn=add_into,
                    flops=tile,
                    accumulate=False,
                )
                b.copy(out.region((t * tile, tile)), acc.full_region())
            else:
                b.copy(out.region((t * tile, tile)), shs[0].full_region())
    for c in reversed(ctxs):
        c.__exit__(None, None, None)
    return Kernel("stream_fuzz", inputs + [out], b.finish())


@settings(max_examples=30, deadline=None)
@given(
    n_tiles=st.integers(2, 7),
    tile=st.sampled_from([4, 8]),
    stages=st.integers(2, 5),
    n_buffers=st.integers(1, 3),
    with_compute=st.booleans(),
    seed=st.integers(0, 5),
)
def test_streaming_differential(n_tiles, tile, stages, n_buffers, with_compute, seed):
    if not with_compute:
        n_buffers = 1  # without the reduce, extra buffers would be dead stores
    kernel = build_streaming_kernel(n_tiles, tile, stages, n_buffers, with_compute)
    validate_kernel(kernel)
    transformed = apply_pipelining(kernel)
    validate_kernel(transformed)

    rng = np.random.default_rng(seed)
    inputs = {
        f"I{i}": rng.standard_normal(n_tiles * tile).astype(np.float16)
        for i in range(n_buffers)
    }
    ref = run_kernel(kernel, inputs, mode="eager")["O"]
    got = run_kernel(transformed, inputs, mode="pipeline")["O"]
    np.testing.assert_array_equal(ref, got)


@settings(max_examples=10, deadline=None)
@given(n_tiles=st.integers(2, 5), stages=st.integers(2, 4))
def test_streaming_group_structure(n_tiles, stages):
    """Same-scope buffers in one loop must form one barrier group."""
    kernel = build_streaming_kernel(n_tiles, 4, stages, n_buffers=2, with_compute=True)
    transformed = apply_pipelining(kernel)
    groups = transformed.attrs["pipeline_groups"]
    assert len(groups) == 1
    assert groups[0].stages == stages
    assert len(groups[0].buffers) == 2


# ---------------------------------------------------------------------------
# Mutation fuzzing: differential validation of the static sync checker.
#
# Each operator below takes a *correctly* transformed kernel and seeds one
# specific synchronization race by dropping, reordering, misguarding or
# re-indexing sync primitives / async copies. The checker must flag every
# mutant (with the expected rule class) while the unmutated corpus stays
# clean. Five rule classes x >= 3 distinct mutants each.
# ---------------------------------------------------------------------------

_MISS = object()


def _rebuild(stmt: Stmt, mapping):
    """Structurally rebuild ``stmt``, replacing nodes by identity.

    ``mapping`` maps ``id(node)`` to ``None`` (delete), a replacement
    ``Stmt``, or a list of statements (spliced into the parent SeqStmt).
    """
    hit = mapping.get(id(stmt), _MISS)
    if hit is not _MISS:
        return hit
    if isinstance(stmt, (For, Allocate)):
        body = _rebuild(stmt.body, mapping)
        if isinstance(body, list):
            body = SeqStmt(body)
        return stmt if body is stmt.body else stmt.with_body(body)
    if isinstance(stmt, SeqStmt):
        out, changed = [], False
        for s in stmt.stmts:
            ns = _rebuild(s, mapping)
            if ns is not s:
                changed = True
            if ns is None:
                continue
            out.extend(ns) if isinstance(ns, list) else out.append(ns)
        return stmt if not changed else SeqStmt(out)
    if isinstance(stmt, IfThenElse):
        then_body = _rebuild(stmt.then_body, mapping)
        else_body = (
            _rebuild(stmt.else_body, mapping) if stmt.else_body is not None else None
        )
        if then_body is stmt.then_body and else_body is stmt.else_body:
            return stmt
        return IfThenElse(stmt.cond, then_body, else_body)
    return stmt


def _is_sync(s, kind):
    return isinstance(s, PipelineSync) and s.kind is kind


@dataclasses.dataclass
class _MutationCtx:
    kernel: Kernel
    loop: For  # the software-pipelined loop
    parent: SeqStmt  # its parent sequence (prologue lives here)
    stages: int
    leader: Buffer

    @property
    def body(self):
        return list(self.loop.body.stmts)

    @property
    def prologue(self):
        stmts = []
        for s in self.parent.stmts:
            if s is self.loop:
                break
            stmts.append(s)
        return stmts

    def prologue_triples(self):
        """Prologue statements grouped into (acquire, copies..., commit)."""
        triples, cur = [], []
        for s in self.prologue:
            cur.append(s)
            if _is_sync(s, SyncKind.PRODUCER_COMMIT):
                triples.append(cur)
                cur = []
        return triples

    def with_loop_body(self, new_stmts):
        new_loop = self.loop.with_body(SeqStmt(new_stmts))
        return self.kernel.with_body(
            _rebuild(self.kernel.body, {id(self.loop): new_loop})
        )

    def with_parent_stmts(self, new_stmts):
        return self.kernel.with_body(
            _rebuild(self.kernel.body, {id(self.parent): SeqStmt(new_stmts)})
        )


def _mutation_ctx(kernel):
    for node, path in walk_with_path(kernel.body):
        if isinstance(node, For) and node.annotations.get("software_pipelined"):
            parent = path[-1]
            assert isinstance(parent, SeqStmt), "pipelined loop must have a prologue"
            group = kernel.attrs["pipeline_groups"][0]
            return _MutationCtx(kernel, node, parent, group.stages, group.leader)
    raise AssertionError("no software-pipelined loop in transformed kernel")


def _drop(stmts, kind, which=0):
    hits = [i for i, s in enumerate(stmts) if _is_sync(s, kind)]
    i = hits[which]
    return stmts[:i] + stmts[i + 1 :]


def _rewrite_producer_stage(ctx, stage_expr_fn):
    mapping = {}
    for s in ctx.body:
        if isinstance(s, MemCopy) and s.is_async:
            dst = s.dst
            new_dst = BufferRegion(
                dst.buffer, [stage_expr_fn(ctx)] + list(dst.offsets[1:]), dst.extents
            )
            mapping[id(s)] = MemCopy(new_dst, s.src, is_async=True)
    new_loop = ctx.loop.with_body(_rebuild(ctx.loop.body, mapping))
    return ctx.kernel.with_body(_rebuild(ctx.kernel.body, {id(ctx.loop): new_loop}))


# --- R1: async copy outside a producer_acquire/commit window ---------------

def _m_drop_inloop_acquire(ctx):
    return ctx.with_loop_body(_drop(ctx.body, SyncKind.PRODUCER_ACQUIRE))


def _m_commit_before_copies(ctx):
    body = _drop(ctx.body, SyncKind.PRODUCER_COMMIT)
    i = next(j for j, s in enumerate(body) if _is_sync(s, SyncKind.PRODUCER_ACQUIRE))
    commit = PipelineSync(ctx.leader, SyncKind.PRODUCER_COMMIT)
    return ctx.with_loop_body(body[: i + 1] + [commit] + body[i + 1 :])


def _m_drop_prologue_acquire(ctx):
    stmts = list(ctx.parent.stmts)
    i = next(j for j, s in enumerate(stmts) if _is_sync(s, SyncKind.PRODUCER_ACQUIRE))
    return ctx.with_parent_stmts(stmts[:i] + stmts[i + 1 :])


# --- R2: consumer read not covered by a consumer_wait ----------------------

def _m_drop_inloop_wait(ctx):
    return ctx.with_loop_body(_drop(ctx.body, SyncKind.CONSUMER_WAIT))


def _m_guard_wait_first_iter(ctx):
    body = ctx.body
    i = next(j for j, s in enumerate(body) if _is_sync(s, SyncKind.CONSUMER_WAIT))
    guarded = IfThenElse(ctx.loop.var.equal(0), body[i])
    return ctx.with_loop_body(body[:i] + [guarded] + body[i + 1 :])


def _m_reads_before_wait(ctx):
    body = ctx.body
    i_w = next(j for j, s in enumerate(body) if _is_sync(s, SyncKind.CONSUMER_WAIT))
    i_r = next(j for j, s in enumerate(body) if _is_sync(s, SyncKind.CONSUMER_RELEASE))
    reads = body[i_w + 1 : i_r]
    return ctx.with_loop_body(body[:i_w] + reads + [body[i_w]] + body[i_r:])


# --- R3: producer stage aliases an in-flight / consumed stage --------------

def _m_unshifted_producer_stage(ctx):
    return _rewrite_producer_stage(
        ctx, lambda c: floormod(c.loop.var, c.stages)
    )


def _m_constant_producer_stage(ctx):
    return _rewrite_producer_stage(ctx, lambda c: IntImm(0))


def _m_drop_inloop_release(ctx):
    return ctx.with_loop_body(_drop(ctx.body, SyncKind.CONSUMER_RELEASE))


# --- R4: prologue does not prefetch exactly num_stages - 1 chunks ----------

def _m_drop_last_prologue_triple(ctx):
    triples = ctx.prologue_triples()
    mapping = {id(s): None for s in triples[-1]}
    return ctx.kernel.with_body(_rebuild(ctx.kernel.body, mapping))


def _m_drop_all_prologue(ctx):
    mapping = {id(s): None for s in ctx.prologue}
    return ctx.kernel.with_body(_rebuild(ctx.kernel.body, mapping))


def _m_duplicate_prologue_triple(ctx):
    triples = ctx.prologue_triples()
    first = triples[0]
    mapping = {id(first[-1]): [first[-1]] + first}
    return ctx.kernel.with_body(_rebuild(ctx.kernel.body, mapping))


# --- R5: commit/wait balance broken along some path ------------------------

def _m_extra_release_after_loop(ctx):
    stmts = list(ctx.parent.stmts)
    i = stmts.index(ctx.loop)
    extra = PipelineSync(ctx.leader, SyncKind.CONSUMER_RELEASE)
    return ctx.with_parent_stmts(stmts[: i + 1] + [extra] + stmts[i + 1 :])


def _m_dangling_acquire_after_loop(ctx):
    stmts = list(ctx.parent.stmts)
    i = stmts.index(ctx.loop)
    extra = PipelineSync(ctx.leader, SyncKind.PRODUCER_ACQUIRE)
    return ctx.with_parent_stmts(stmts[: i + 1] + [extra] + stmts[i + 1 :])


def _m_thread_divergent_release(ctx):
    body = ctx.body
    i = next(j for j, s in enumerate(body) if _is_sync(s, SyncKind.CONSUMER_RELEASE))
    w = Var("w_mut")
    diverged = For(w, 2, IfThenElse(w.equal(0), body[i]), ForKind.THREAD)
    return ctx.with_loop_body(body[:i] + [diverged] + body[i + 1 :])


#: (name, rule class the mutation seeds, mutation operator)
MUTATION_OPERATORS = [
    ("drop-inloop-acquire", RULE_UNGUARDED_COPY, _m_drop_inloop_acquire),
    ("commit-before-copies", RULE_UNGUARDED_COPY, _m_commit_before_copies),
    ("drop-prologue-acquire", RULE_UNGUARDED_COPY, _m_drop_prologue_acquire),
    ("drop-inloop-wait", RULE_READ_BEFORE_ARRIVAL, _m_drop_inloop_wait),
    ("guard-wait-first-iter", RULE_READ_BEFORE_ARRIVAL, _m_guard_wait_first_iter),
    ("reads-before-wait", RULE_READ_BEFORE_ARRIVAL, _m_reads_before_wait),
    ("unshifted-producer-stage", RULE_STAGE_ALIAS, _m_unshifted_producer_stage),
    ("constant-producer-stage", RULE_STAGE_ALIAS, _m_constant_producer_stage),
    ("drop-inloop-release", RULE_STAGE_ALIAS, _m_drop_inloop_release),
    ("drop-last-prologue-triple", RULE_PROLOGUE_SHORTFALL, _m_drop_last_prologue_triple),
    ("drop-all-prologue", RULE_PROLOGUE_SHORTFALL, _m_drop_all_prologue),
    ("duplicate-prologue-triple", RULE_PROLOGUE_SHORTFALL, _m_duplicate_prologue_triple),
    ("extra-release-after-loop", RULE_UNBALANCED_SYNC, _m_extra_release_after_loop),
    ("dangling-acquire-after-loop", RULE_UNBALANCED_SYNC, _m_dangling_acquire_after_loop),
    ("thread-divergent-release", RULE_UNBALANCED_SYNC, _m_thread_divergent_release),
]

#: (n_tiles, stages, n_buffers, with_compute) base kernels the mutants seed
MUTATION_CORPUS = [
    (5, 3, 1, False),
    (6, 4, 2, True),
    (4, 2, 2, True),
]


def test_mutation_fuzz_detects_seeded_races():
    """Differential validation of the checker: every seeded race is caught
    (>= 95% detection required, with the expected rule class), and the
    unmutated corpus is clean."""
    detected = expected_hits = total = 0
    per_rule_mutants = {}
    misses = []
    for n_tiles, stages, n_buffers, with_compute in MUTATION_CORPUS:
        base = apply_pipelining(
            build_streaming_kernel(n_tiles, 8, stages, n_buffers, with_compute)
        )
        assert check_kernel(base) == [], "unmutated corpus must be clean"
        for name, rule, op in MUTATION_OPERATORS:
            ctx = _mutation_ctx(base)
            mutant = op(ctx)
            diags = [d for d in check_kernel(mutant) if d.severity == "error"]
            total += 1
            per_rule_mutants.setdefault(rule, set()).add(name)
            if diags:
                detected += 1
            else:
                misses.append((name, (n_tiles, stages, n_buffers)))
            if any(d.rule == rule for d in diags):
                expected_hits += 1
    assert detected / total >= 0.95, f"detection {detected}/{total}; missed: {misses}"
    assert expected_hits / total >= 0.95, (
        f"expected-rule hits only {expected_hits}/{total}"
    )
    for rule, names in sorted(per_rule_mutants.items()):
        assert len(names) >= 3, f"{rule} exercised by only {sorted(names)}"
    assert len(per_rule_mutants) == 5


@pytest.mark.parametrize("name,rule,op", MUTATION_OPERATORS, ids=[m[0] for m in MUTATION_OPERATORS])
def test_each_mutation_operator_detected(name, rule, op):
    """Every individual mutant is flagged, and with its seeded rule class."""
    base = apply_pipelining(build_streaming_kernel(5, 8, 3, 2, True))
    mutant = op(_mutation_ctx(base))
    diags = check_kernel(mutant)
    assert any(d.severity == "error" for d in diags), f"{name} went undetected"
    assert any(d.rule == rule for d in diags), (
        f"{name}: expected {rule}, got {sorted({d.rule for d in diags})}"
    )

"""Shared helpers for transformation tests."""

import numpy as np

from repro.codegen import lower
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, elementwise, placeholder


def build_kernel(m=32, n=32, k=64, batch=1, cfg=None, a_elementwise=None):
    """Lower a small GEMM with the given config; returns (kernel, spec)."""
    cfg = cfg or TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8)
    spec = GemmSpec("toy", batch=batch, m=m, n=n, k=k)
    a_shape = (batch, m, k) if batch > 1 else (m, k)
    b_shape = (batch, n, k) if batch > 1 else (n, k)
    a = placeholder("A", a_shape)
    b = placeholder("B", b_shape)
    if a_elementwise:
        a = elementwise(a, a_elementwise, name="A_f")
    c = contraction(a, b, spec)
    sch = auto_schedule(c, cfg)
    return lower(sch), spec


def reference(a, b, batch, a_fn=None):
    a32 = a.astype(np.float32)
    if a_fn is not None:
        a32 = a_fn(a32)
    b32 = b.astype(np.float32)
    if batch > 1:
        return np.einsum("bmk,bnk->bmn", a32, b32)
    return a32 @ b32.T


def random_inputs(spec, seed=0):
    rng = np.random.default_rng(seed)
    a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
    b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
    a = rng.standard_normal(a_shape).astype(np.float16)
    b = rng.standard_normal(b_shape).astype(np.float16)
    return a, b

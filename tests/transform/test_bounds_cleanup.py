"""Tests for the bounds verifier and the unroll/simplify cleanup passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import lower
from repro.interp import run_kernel
from repro.ir import (
    Buffer,
    IRBuilder,
    IntImm,
    Kernel,
    MemCopy,
    Scope,
    Var,
    validate_kernel,
)
from repro.ir.analysis import collect, collect_syncs
from repro.ir.stmt import For, ForKind, IfThenElse
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder
from repro.transform import (
    BoundsError,
    Interval,
    TransformError,
    apply_pipelining,
    interval_of,
    simplify_pass,
    unroll_pass,
    verify_in_bounds,
)


def pipelined_kernel(m=32, n=32, k=64, ss=3, rs=2):
    spec = GemmSpec("b", 1, m, n, k)
    a = placeholder("A", (m, k))
    b = placeholder("B", (n, k))
    c = contraction(a, b, spec)
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=ss, reg_stages=rs)
    return apply_pipelining(lower(auto_schedule(c, cfg)))


class TestInterval:
    def test_arithmetic(self):
        a, b = Interval(1, 3), Interval(-2, 2)
        assert (a + b) == Interval(-1, 5)
        assert (a - b) == Interval(-1, 5)
        assert (a * b) == Interval(-6, 6)

    def test_floordiv(self):
        assert Interval(0, 7).floordiv(Interval(2, 2)) == Interval(0, 3)

    def test_floordiv_by_zero_interval(self):
        with pytest.raises(BoundsError):
            Interval(0, 7).floordiv(Interval(-1, 1))

    def test_floormod_constant(self):
        assert Interval(0, 10).floormod(Interval(3, 3)) == Interval(0, 2)

    def test_floormod_exact_when_one_period(self):
        assert Interval(4, 5).floormod(Interval(8, 8)) == Interval(4, 5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_interval_of_expression(self):
        x = Var("x")
        env = {x: Interval(0, 3)}
        assert interval_of((x + 2) * 3, env) == Interval(6, 15)
        assert interval_of((x + 1) % 4, env) == Interval(0, 3)

    @given(
        lo=st.integers(-20, 20),
        width=st.integers(0, 20),
        n=st.integers(1, 9),
        shift=st.integers(-5, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_soundness(self, lo, width, n, shift):
        """The interval must contain every concrete value."""
        x = Var("x")
        expr = ((x + shift) % n) * 2 + shift
        iv = interval_of(expr, {x: Interval(lo, lo + width)})
        from repro.ir.expr import evaluate

        for v in range(lo, lo + width + 1):
            val = evaluate(expr, {x: v})
            assert iv.lo <= val <= iv.hi


class TestVerifyInBounds:
    @pytest.mark.parametrize("ss,rs", [(1, 1), (2, 1), (3, 2), (4, 2)])
    def test_pipelined_kernels_prove_safe(self, ss, rs):
        """The pass's shifted + wrapped indices are statically in bounds."""
        assert verify_in_bounds(pipelined_kernel(ss=ss, rs=rs)) > 0

    def test_detects_overflow(self):
        A = Buffer("A", (32,))
        out_b = Buffer("O", (32,))
        b = IRBuilder()
        with b.serial_for("t", 4) as t:
            b.copy(out_b.region((t * 10, 8)), A.region((t * 8, 8)))  # t=3 -> [30, 38)
        with pytest.raises(BoundsError, match="outside"):
            verify_in_bounds(Kernel("bad", [A, out_b], b.finish()))

    def test_detects_unwrapped_shift(self):
        """An index shift *without* the modulo wrap must be caught — the
        exact bug class step three of the transformation prevents."""
        A = Buffer("A", (32,))
        sh = Buffer("sh", (8,), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh):
            with b.serial_for("t", 4) as t:
                b.copy(sh.full_region(), A.region(((t + 1) * 8, 8)))  # shift, no wrap
                b.copy(A.region((t * 8, 8)), sh.full_region())
        with pytest.raises(BoundsError):
            verify_in_bounds(Kernel("bad", [A], b.finish()))

    def test_wrapped_shift_passes(self):
        A = Buffer("A", (32,))
        sh = Buffer("sh", (8,), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh):
            with b.serial_for("t", 4) as t:
                b.copy(sh.full_region(), A.region((((t + 1) % 4) * 8, 8)))
                b.copy(A.region((t * 8, 8)), sh.full_region())
        # two copy statements x two regions each (static count)
        assert verify_in_bounds(Kernel("ok", [A], b.finish())) == 4

    def test_non_constant_extent_rejected(self):
        A = Buffer("A", (8,))
        n = Var("n")
        outer = For(Var("o"), 4, For(n, 2, MemCopy(A.full_region(), A.full_region())))
        inner_bad = For(Var("i"), n + 1, MemCopy(A.full_region(), A.full_region()))
        with pytest.raises(TransformError):
            verify_in_bounds(Kernel("k", [A], For(n, 2, inner_bad)))


class TestUnrollPass:
    def test_semantics_preserved(self):
        k = pipelined_kernel()
        k2 = unroll_pass(k, max_serial_extent=2)
        validate_kernel(k2)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 64)).astype(np.float16)
        b = rng.standard_normal((32, 64)).astype(np.float16)
        o1 = run_kernel(k, {"A": a, "B": b}, mode="pipeline")["C"]
        o2 = run_kernel(k2, {"A": a, "B": b}, mode="pipeline")["C"]
        np.testing.assert_array_equal(o1, o2)

    def test_pipelined_loops_never_unrolled(self):
        k = unroll_pass(pipelined_kernel(), max_serial_extent=1000)
        piped = collect(
            k.body,
            lambda s: isinstance(s, For) and s.annotations.get("software_pipelined"),
        )
        assert len(piped) == 2  # ko and ki both survive

    def test_unrolled_syncs_are_distinct_objects(self):
        A = Buffer("A", (32,))
        sh = Buffer("sh", (8,), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": 2}):
            with b.serial_for("t", 4) as t:
                b.copy(sh.full_region(), A.region(((t % 4) * 8, 8)), is_async=True)
                b.copy(A.region((t * 8, 8)), sh.full_region())
        kernel = apply_pipelining(Kernel("k", [A], b.finish()))
        # wrap the pipelined kernel in an unrolled outer loop via cleanup on
        # a copy: here simply unroll nothing and verify ids unique already
        syncs = collect_syncs(kernel.body)
        assert len({id(s) for s in syncs}) == len(syncs)

    def test_explicit_unrolled_kind(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.unrolled_for("u", 4) as u:
            b.copy(A.region(((u * 2) % 8, 2)), A.region((0, 2)))
        k = unroll_pass(Kernel("k", [A], b.finish()))
        assert collect(k.body, lambda s: isinstance(s, For)) == []
        assert len(collect(k.body, lambda s: isinstance(s, MemCopy))) == 4

    def test_non_constant_unroll_rejected(self):
        A = Buffer("A", (8,))
        n = Var("n")
        body = For(Var("u"), n + 1, MemCopy(A.full_region(), A.full_region()), ForKind.UNROLLED)
        with pytest.raises(TransformError):
            unroll_pass(Kernel("k", [A], For(n, 2, body)))


class TestSimplifyPass:
    def test_dead_guard_dropped(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 2):
            b.emit(IfThenElse(IntImm(0), MemCopy(A.full_region(), A.full_region())))
            b.copy(A.full_region(), A.full_region())
        k = simplify_pass(Kernel("k", [A], b.finish()))
        assert collect(k.body, lambda s: isinstance(s, IfThenElse)) == []
        assert len(collect(k.body, lambda s: isinstance(s, MemCopy))) == 1

    def test_live_guard_unwrapped(self):
        A = Buffer("A", (8,))
        body = IfThenElse(IntImm(1), MemCopy(A.full_region(), A.full_region()))
        k = simplify_pass(Kernel("k", [A], body))
        assert isinstance(k.body, MemCopy)

    def test_index_folding_after_unroll(self):
        """Unrolling makes guards constant; simplify keeps only live arms."""
        A = Buffer("A", (16,))
        b = IRBuilder()
        with b.unrolled_for("u", 4) as u:
            with b.if_then(u.equal(2)):
                b.copy(A.region((0, 4)), A.region((8, 4)))
        k = simplify_pass(unroll_pass(Kernel("k", [A], b.finish())))
        assert collect(k.body, lambda s: isinstance(s, IfThenElse)) == []
        assert len(collect(k.body, lambda s: isinstance(s, MemCopy))) == 1

    def test_semantics_preserved_through_both(self):
        k = pipelined_kernel(ss=4, rs=2)
        k2 = simplify_pass(unroll_pass(k, max_serial_extent=4))
        rng = np.random.default_rng(2)
        a = rng.standard_normal((32, 64)).astype(np.float16)
        b = rng.standard_normal((32, 64)).astype(np.float16)
        o1 = run_kernel(k, {"A": a, "B": b}, mode="pipeline")["C"]
        o2 = run_kernel(k2, {"A": a, "B": b}, mode="pipeline")["C"]
        np.testing.assert_array_equal(o1, o2)
        assert verify_in_bounds(k2) > 0

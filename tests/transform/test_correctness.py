"""End-to-end functional correctness of the pipelining transformation.

The transformed kernel, executed under strict pipeline semantics (staged
async copies, NaN-poisoned buffers), must reproduce the numpy reference for
every stage configuration. This is the reproduction's equivalent of running
the generated CUDA on hardware and diffing against cuBLAS.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import PipelineHazardError, run_kernel
from repro.ir import validate_kernel
from repro.ir.stmt import PipelineSync, SyncKind
from repro.ir.visitor import StmtMutator
from repro.schedule import TileConfig
from repro.transform import apply_pipelining

from .conftest import build_kernel, random_inputs, reference


def run_both(kernel, spec, a_fn=None, seed=0):
    a, b = random_inputs(spec, seed)
    ref = reference(a, b, spec.batch, a_fn)
    pipelined = apply_pipelining(kernel)
    validate_kernel(pipelined)
    out_e = run_kernel(kernel, {"A": a, "B": b}, mode="eager")["C"].astype(np.float32)
    out_p = run_kernel(pipelined, {"A": a, "B": b}, mode="pipeline")["C"].astype(np.float32)
    np.testing.assert_allclose(out_e, ref, atol=0.5, rtol=0.02)
    np.testing.assert_allclose(out_p, ref, atol=0.5, rtol=0.02)
    np.testing.assert_array_equal(out_e, out_p)  # identical op order -> identical bits


STAGE_MATRIX = [
    (1, 1),
    (2, 1),
    (3, 1),
    (4, 1),
    (1, 2),
    (2, 2),
    (3, 2),
    (4, 2),
]


@pytest.mark.parametrize("smem,reg", STAGE_MATRIX)
def test_stage_matrix(smem, reg):
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=smem, reg_stages=reg)
    kernel, spec = build_kernel(m=32, n=32, k=64, cfg=cfg)
    run_both(kernel, spec)


def test_batched():
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=3, reg_stages=2)
    kernel, spec = build_kernel(m=16, n=16, k=64, batch=3, cfg=cfg)
    run_both(kernel, spec)


def test_stages_exceed_loop_extent():
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=4, reg_stages=1)
    kernel, spec = build_kernel(m=16, n=16, k=32, cfg=cfg)  # ko extent 2 < stages 4
    run_both(kernel, spec)


def test_rectangular_tiles_and_warps():
    cfg = TileConfig(32, 16, 16, warp_m=8, warp_n=16, chunk_k=4, smem_stages=3, reg_stages=2)
    kernel, spec = build_kernel(m=64, n=32, k=64, cfg=cfg)
    run_both(kernel, spec)


def test_elementwise_fused_operand():
    """Pipeline-then-inline (Fig. 5 case 2) computes f at the operand read."""
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=3, reg_stages=2)
    kernel, spec = build_kernel(m=32, n=32, k=64, cfg=cfg, a_elementwise="relu")
    assert kernel.attrs["operand_fused_fn"]["a"] == "relu"
    run_both(kernel, spec, a_fn=lambda x: np.maximum(x, 0))


def test_elementwise_fused_into_copy_without_pipelining():
    """Inline-then-no-pipeline (Fig. 5 case 1) fuses f into the copy."""
    cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8)
    kernel, spec = build_kernel(m=32, n=32, k=64, cfg=cfg, a_elementwise="relu")
    assert kernel.attrs["operand_fused_fn"]["a"] is None
    run_both(kernel, spec, a_fn=lambda x: np.maximum(x, 0))


class _DropSync(StmtMutator):
    """Failure injection: delete the n-th sync statement of a given kind."""

    def __init__(self, kind, index=0, scope=None):
        self.kind = kind
        self.index = index
        self.scope = scope
        self.seen = 0

    def visit_pipelinesync(self, stmt: PipelineSync):
        if stmt.kind is self.kind and (self.scope is None or stmt.buffer.scope is self.scope):
            if self.seen == self.index:
                self.seen += 1
                return None
            self.seen += 1
        return stmt


class TestFailureInjection:
    """Removing any synchronization primitive must be *observable* — either a
    detected protocol violation or a corrupted (NaN-poisoned) output. If
    these tests fail, the pipeline-semantics interpreter is too lax to act
    as a correctness oracle."""

    def _mutate_and_run(self, mutator):
        cfg = TileConfig(
            16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=3, reg_stages=2
        )
        kernel, spec = build_kernel(m=32, n=32, k=64, cfg=cfg)
        pipelined = apply_pipelining(kernel)
        broken = mutator.mutate_kernel(pipelined)
        a, b = random_inputs(spec)
        ref = reference(a, b, spec.batch)
        out = run_kernel(broken, {"A": a, "B": b}, mode="pipeline")["C"].astype(np.float32)
        if not np.allclose(out, ref, atol=0.5, rtol=0.02):
            raise PipelineHazardError("output corrupted")

    @pytest.mark.parametrize("kind", [SyncKind.CONSUMER_WAIT, SyncKind.PRODUCER_COMMIT])
    def test_dropping_sync_is_caught(self, kind):
        with pytest.raises(PipelineHazardError):
            self._mutate_and_run(_DropSync(kind))

    def test_dropping_guarded_smem_wait_is_caught(self):
        from repro.ir import Scope

        # Drop the *in-loop* guarded smem wait (index 1; index 0 is the
        # prologue wait).
        with pytest.raises(PipelineHazardError):
            self._mutate_and_run(_DropSync(SyncKind.CONSUMER_WAIT, index=1, scope=Scope.SHARED))

    def test_dropping_release_deadlocks(self):
        with pytest.raises(PipelineHazardError, match="deadlock|release"):
            self._mutate_and_run(_DropSync(SyncKind.CONSUMER_RELEASE))

    def test_untransformed_async_kernel_rejected_by_pipeline_mode(self):
        cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=3)
        kernel, spec = build_kernel(cfg=cfg)
        a, b = random_inputs(spec)
        with pytest.raises(PipelineHazardError, match="pipelining pass"):
            run_kernel(kernel, {"A": a, "B": b}, mode="pipeline")


@settings(max_examples=12, deadline=None)
@given(
    smem=st.integers(1, 4),
    reg=st.integers(1, 2),
    ko_extent=st.integers(2, 5),
    ki_choice=st.sampled_from([(16, 4), (16, 8), (16, 16)]),
    seed=st.integers(0, 3),
)
def test_property_random_configs(smem, reg, ko_extent, ki_choice, seed):
    """Any valid (stages, extent) combination preserves GEMM semantics."""
    block_k, chunk_k = ki_choice
    cfg = TileConfig(
        16, 16, block_k, warp_m=8, warp_n=8, chunk_k=chunk_k, smem_stages=smem, reg_stages=reg
    )
    kernel, spec = build_kernel(m=16, n=16, k=block_k * ko_extent, cfg=cfg)
    run_both(kernel, spec, seed=seed)

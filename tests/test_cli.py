"""Tests for the command-line interface and tuning-log persistence."""

import json

import pytest

from repro.cli import build_parser, main
from repro.schedule import TileConfig
from repro.tuning import FAILED, TuneHistory
from repro.tuning.record import load_history, save_history


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "--m", "64", "--n", "64", "--k", "64"])
        args.variant == "alcop"
        assert args.gpu == "a100"

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "--m", "64", "--n", "64", "--k", "64", "--variant", "fastest"]
            )

    def test_measure_flags_accepted(self):
        for cmd in (["compile", "--m", "64", "--n", "64", "--k", "64"],
                    ["tune", "--m", "64", "--n", "64", "--k", "64"],
                    ["suite"]):
            args = build_parser().parse_args(cmd + ["--jobs", "4", "--cache-dir", "/tmp/c"])
            assert args.jobs == 4 and args.cache_dir == "/tmp/c"
            args = build_parser().parse_args(cmd)
            assert args.jobs == 1 and args.cache_dir is None


class TestCommands:
    def test_compile_small(self, capsys):
        rc = main(["compile", "--m", "128", "--n", "128", "--k", "256", "--space", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "TFLOP/s" in out

    def test_ir_prints_pipelined_kernel(self, capsys):
        rc = main(
            ["ir", "--m", "64", "--n", "64", "--k", "128",
             "--config", "32,32,32,16,16,16,3,2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "producer_acquire" in out
        assert "async_memcpy" in out

    def test_ir_bad_config(self, capsys):
        rc = main(["ir", "--m", "64", "--n", "64", "--k", "128", "--config", "32,32"])
        assert rc == 2

    def test_tune_writes_log(self, capsys, tmp_path):
        log = tmp_path / "log.json"
        rc = main(
            ["tune", "--m", "128", "--n", "128", "--k", "256", "--space", "60",
             "--method", "analytical", "--trials", "8", "--out", str(log)]
        )
        assert rc == 0
        history = load_history(log)
        assert len(history) == 8

    def test_tune_warm_cache_skips_compiles(self, capsys, tmp_path):
        """Acceptance: a repeat `repro tune` against a warm --cache-dir must
        perform >= 5x fewer compiles (here: zero), with identical results."""
        import re

        argv = ["tune", "--m", "128", "--n", "128", "--k", "256", "--space", "60",
                "--method", "random", "--trials", "8", "--cache-dir", str(tmp_path)]

        def compiles(out):
            return int(re.search(r"(\d+) compiled", out).group(1))

        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert compiles(cold) >= 5
        assert compiles(warm) * 5 <= compiles(cold)
        strip = [ln for ln in cold.splitlines() if not ln.startswith(("telemetry", "cache"))]
        assert strip == [
            ln for ln in warm.splitlines() if not ln.startswith(("telemetry", "cache"))
        ], "warm results must match cold results"

    def test_tune_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        """Acceptance: `repro tune --fleet 2 --trace-out` produces one valid
        Chrome trace with coordinator, per-shard worker and per-stage
        (transform/lower) spans under a single trace_id."""
        out = tmp_path / "trace.json"
        rc = main(["tune", "--m", "128", "--n", "128", "--k", "256",
                   "--space", "24", "--method", "random", "--trials", "4",
                   "--fleet", "2", "--trace-out", str(out)])
        assert rc == 0
        assert "span(s) written" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert {"tune", "fleet:coordinator", "fleet:worker-shard",
                "build-best", "schedule", "lower", "transform"} <= names
        assert len({e["args"]["trace_id"] for e in events}) == 1
        assert len({e["pid"] for e in events}) >= 2, \
            "worker-process spans must stitch into the coordinator trace"

    def test_tune_parallel_jobs_match_serial(self, capsys, tmp_path):
        argv = ["tune", "--m", "128", "--n", "128", "--k", "256", "--space", "40",
                "--method", "grid", "--trials", "6"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        strip = [ln for ln in serial.splitlines() if not ln.startswith("telemetry")]
        assert strip == [ln for ln in parallel.splitlines() if not ln.startswith("telemetry")]

    def test_tune_profile_prints_stage_breakdown(self, capsys):
        argv = ["tune", "--m", "128", "--n", "128", "--k", "256", "--space", "30",
                "--method", "grid", "--trials", "4", "--profile", "--via-ir"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "per-stage compile/simulate breakdown" in out
        for stage_name in ("schedule", "lower", "transform", "simulate"):
            assert stage_name in out, stage_name

    def test_tune_prune_ratio_reports_and_matches(self, capsys):
        base = ["tune", "--m", "128", "--n", "128", "--k", "256", "--space", "40",
                "--method", "grid", "--trials", "6"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert "prune(" not in plain  # off by default
        assert main(base + ["--prune-ratio", "0"]) == 0
        explicit_off = capsys.readouterr().out
        strip = [ln for ln in plain.splitlines() if not ln.startswith("telemetry")]
        assert strip == [
            ln for ln in explicit_off.splitlines() if not ln.startswith("telemetry")
        ], "--prune-ratio 0 must reproduce the default run exactly"
        assert main(base + ["--prune-ratio", "1.5"]) == 0
        pruned = capsys.readouterr().out
        assert "prune(ratio=1.5): kept" in pruned

    def test_cuda_emission(self, capsys, tmp_path):
        out = tmp_path / "k.cu"
        rc = main(
            ["cuda", "--m", "64", "--n", "64", "--k", "128",
             "--config", "32,32,32,16,16,16,3,2", "--out", str(out)]
        )
        assert rc == 0
        src = out.read_text()
        assert "cuda::memcpy_async" in src and "wmma::mma_sync" in src

    def test_cuda_bad_config(self, capsys):
        assert main(["cuda", "--m", "64", "--n", "64", "--k", "128", "--config", "1,2,3"]) == 2

    def test_suite_subset(self, capsys):
        rc = main(["suite", "--ops", "MM_RN50_FC", "--space", "80"])
        assert rc == 0
        assert "MM_RN50_FC" in capsys.readouterr().out

    def test_check_clean_suite_subset(self, capsys):
        rc = main(["check", "--ops", "MM_RN50_FC", "--configs", "2", "--space", "200"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MM_RN50_FC" in out
        assert "all synchronization-clean" in out

    def test_check_reports_seeded_race(self, capsys, monkeypatch):
        import repro.ir.syncheck as syncheck
        from repro.ir.syncheck import SyncDiagnostic

        seeded = SyncDiagnostic(
            rule="R3-stage-alias", severity="error", buffer="A_shared",
            path="for ko@1", message="seeded race",
        )
        monkeypatch.setattr(syncheck, "check_kernel", lambda k: [seeded])
        rc = main(["check", "--ops", "MM_RN50_FC", "--configs", "1", "--space", "200"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "R3-stage-alias" in out and "finding(s)" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--socket", "/tmp/d.sock"])
        assert args.port is None and args.registry_dir is None
        assert args.workers is None and args.space is None

    def test_serve_defaults_mirror_server_constants(self):
        from repro.cli import (
            _SERVE_IDLE_TIMEOUT,
            _SERVE_MAX_QUEUE,
            _SERVE_SPACE,
            _SERVE_WORKERS,
        )
        from repro.serve.server import (
            DEFAULT_IDLE_TIMEOUT,
            DEFAULT_MAX_QUEUE,
            DEFAULT_SPACE,
            DEFAULT_WORKERS,
        )

        assert _SERVE_WORKERS == DEFAULT_WORKERS
        assert _SERVE_SPACE == DEFAULT_SPACE
        assert _SERVE_IDLE_TIMEOUT == DEFAULT_IDLE_TIMEOUT
        assert _SERVE_MAX_QUEUE == DEFAULT_MAX_QUEUE

    def test_serve_requires_an_endpoint(self, capsys):
        assert main(["serve"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_client_actions(self):
        for action in ("compile", "tune", "status", "health", "stop", "ping"):
            args = build_parser().parse_args(["client", action, "--socket", "/tmp/d.sock"])
            assert args.action == action

    def test_client_overload_flags(self):
        args = build_parser().parse_args(
            ["client", "ping", "--socket", "/tmp/d.sock",
             "--deadline", "2.5", "--retries", "3"])
        assert args.deadline == 2.5 and args.retries == 3

    def test_client_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "frobnicate", "--socket", "/tmp/d.sock"])

    def test_client_requires_exactly_one_endpoint(self, capsys):
        assert main(["client", "ping"]) == 2
        assert main(["client", "ping", "--socket", "/tmp/a", "--port", "1"]) == 2

    def test_client_compile_requires_problem(self, capsys, tmp_path):
        assert main(["client", "compile", "--socket", str(tmp_path / "d.sock")]) == 2
        assert "--m/--n/--k" in capsys.readouterr().err


class TestServeEndToEnd:
    """Daemon + client through the real CLI entry points, in-process."""

    @pytest.fixture
    def daemon(self, tmp_path):
        from repro.serve.registry import ArtifactRegistry
        from repro.serve.server import ReproServer

        server = ReproServer(
            socket_path=str(tmp_path / "d.sock"),
            registry=ArtifactRegistry(tmp_path / "reg"),
            default_space=16,
        )
        server.start()
        try:
            yield server
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def test_client_tune_then_warm_compile(self, capsys, daemon, tmp_path):
        base = ["client", "--socket", daemon.socket_path, "--wait", "10",
                "--m", "128", "--n", "128", "--k", "128"]
        assert main([base[0], "tune"] + base[1:]) == 0
        cold = capsys.readouterr().out
        assert "served   : fresh" in cold

        cu = tmp_path / "k.cu"
        assert main([base[0], "compile"] + base[1:] + ["--out", str(cu)]) == 0
        warm = capsys.readouterr().out
        assert "served   : registry" in warm
        assert "no compile work" in warm
        assert "__global__" in cu.read_text()

    def test_client_json_output(self, capsys, daemon):
        rc = main(["client", "tune", "--socket", daemon.socket_path,
                   "--m", "128", "--n", "128", "--k", "128", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served_from"] in ("fresh", "registry")
        assert payload["config"]["block_m"] > 0

    def test_client_status_and_stop(self, capsys, daemon):
        assert main(["client", "status", "--socket", daemon.socket_path]) == 0
        out = capsys.readouterr().out
        assert "registry :" in out and "counters :" in out
        assert main(["client", "stop", "--socket", daemon.socket_path]) == 0
        assert "daemon stopping" in capsys.readouterr().out

    def test_client_status_renders_every_counter_generically(self, capsys, daemon):
        """The text view prints every counter the server reports, so a new
        server counter needs zero CLI changes to become visible — pinned by
        comparing against the --json payload."""
        assert main(["client", "status", "--socket", daemon.socket_path,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert main(["client", "status", "--socket", daemon.socket_path]) == 0
        text = capsys.readouterr().out
        assert payload["counters"], "status payload lost its counters dict"
        for name, value in payload["counters"].items():
            assert name in text, f"counter {name} missing from text status"
        for name in payload.get("measurer", {}):
            assert name in text, f"measurer stat {name} missing from text status"

    def test_client_metrics_returns_prometheus_exposition(self, capsys, daemon):
        assert main(["client", "metrics", "--socket", daemon.socket_path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sweeps_run_total counter" in out
        assert "repro_requests_shed_total" in out

    def test_client_unreachable_daemon_exits_1(self, capsys, tmp_path):
        rc = main(["client", "ping", "--socket", str(tmp_path / "nope.sock")])
        assert rc == 1
        assert "is the daemon running?" in capsys.readouterr().err


class TestHistoryPersistence:
    def test_round_trip(self, tmp_path):
        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16, smem_stages=3, reg_stages=2)
        h.append(cfg, 12.5)
        h.append(cfg.with_stages(1, 1), FAILED)
        path = tmp_path / "hist.json"
        save_history(h, path)
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded.records[0].latency_us == 12.5
        assert loaded.records[0].config == cfg
        assert loaded.records[1].failed

    def test_json_is_valid(self, tmp_path):
        h = TuneHistory()
        h.append(TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16), 3.0)
        path = tmp_path / "hist.json"
        save_history(h, path)
        payload = json.loads(path.read_text())
        assert payload[0]["config"]["block_m"] == 64

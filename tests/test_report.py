"""Tests for the reproduction-report aggregator."""

import pathlib

import pytest

from repro.report import collect_results, main, render_report


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "fig10_single_op.txt").write_text("Fig. 10 table\nrow\n")
    (tmp_path / "table3_end_to_end.txt").write_text("Table III table\n")
    return tmp_path


class TestCollect:
    def test_collects_known_files(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"fig10_single_op", "table3_end_to_end"}

    def test_empty_dir(self, tmp_path):
        assert collect_results(tmp_path) == {}


class TestRender:
    def test_sections_present(self, results_dir):
        report = render_report(collect_results(results_dir), timestamp="T")
        assert "## Fig. 10 — single-operator speedups" in report
        assert "Fig. 10 table" in report
        assert "## Table III — end-to-end models" in report

    def test_missing_sections_listed(self, results_dir):
        report = render_report(collect_results(results_dir), timestamp="T")
        assert "## Not yet generated" in report
        assert "Fig. 12" in report

    def test_deterministic_with_fixed_timestamp(self, results_dir):
        r = collect_results(results_dir)
        assert render_report(r, "T") == render_report(r, "T")


class TestMain:
    def test_writes_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()
        assert "ALCOP reproduction report" in out.read_text()

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "ALCOP reproduction report" in capsys.readouterr().out

    def test_empty_dir_errors(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1

    def test_real_results_dir_if_present(self, capsys):
        real = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        if not real.exists() or not any(real.iterdir()):
            pytest.skip("benchmarks not yet run")
        assert main([str(real)]) == 0

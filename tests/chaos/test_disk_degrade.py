"""Disk-failure degradation: ENOSPC/EIO on the write paths of the
measurement cache, the session journal and the artifact registry must
degrade each store to memory-only — one warning, a ``disk_errors``
counter — never crash the tuner or the daemon."""

import warnings

import pytest

from repro import faults
from repro.gpusim.config import A100
from repro.schedule.config import TileConfig
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import ReproServer
from repro.tensor.operation import GemmSpec
from repro.tuning.cache import MeasurementCache
from repro.tuning.measure import Measurer
from repro.tuning.session import TuneSession
from repro.tuning.space import SpaceOptions, enumerate_space

SPEC = GemmSpec("disk", 1, 128, 128, 256)

CFG = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16,
                 smem_stages=3, reg_stages=2)


def disk_plan(match):
    return faults.FaultPlan([faults.FaultRule("disk", "crash", match=match)])


class TestCacheDegrade:
    def test_put_degrades_to_memory_only_with_one_warning(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        with faults.injected(disk_plan("cache:")):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                cache.put("k1", 12.5)
                cache.put("k2", 7.5)
        degrade_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(degrade_warnings) == 1, "must warn exactly once"
        assert "memory-only" in str(degrade_warnings[0].message)
        assert cache.degraded and cache.disk_errors == 1
        # The in-memory entries still serve the rest of this process.
        assert cache.get("k1") == 12.5 and cache.get("k2") == 7.5
        # Nothing persisted: a fresh cache over the same directory is cold.
        assert MeasurementCache(tmp_path).get("k1") is None

    def test_sweep_survives_disk_failure_with_identical_bits(self, tmp_path):
        space = enumerate_space(SPEC, A100, SpaceOptions(max_size=8))
        clean = Measurer(A100, via_ir=False).sweep(SPEC, space)
        m = Measurer(A100, via_ir=False, cache=MeasurementCache(tmp_path / "c"))
        with faults.injected(disk_plan("cache:")):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                faulted = m.sweep(SPEC, space)
        assert faulted == clean, "disk failure must not change measured bits"
        assert m.telemetry.disk_errors >= 1


class TestSessionDegrade:
    def test_journal_degrades_but_trials_stay_in_memory(self, tmp_path):
        session = TuneSession.create(tmp_path / "s", spec="disk-test")
        with faults.injected(disk_plan("journal:")):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                session.log_trial(CFG, 10.0)
                session.log_trial(CFG.with_stages(2, 2), 11.0)
        degrade_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(degrade_warnings) == 1
        assert "memory-only" in str(degrade_warnings[0].message)
        assert session.degraded and session.disk_errors == 1
        assert len(session) == 2, "trials must survive in memory"
        session.close()
        # The journal never materialized: a reload finds no trials (the
        # price of degradation is resumability, not correctness).
        reloaded = TuneSession.load(tmp_path / "s")
        assert len(reloaded) == 0


class TestRegistryDegrade:
    def test_daemon_serves_through_registry_disk_failure(self, tmp_path):
        """An ENOSPC mid-publish must not fail the request that built the
        artifact: it serves from memory, the warm path keeps working, and
        status surfaces the degradation."""
        server = ReproServer(
            port=0,
            registry=ArtifactRegistry(tmp_path / "reg"),
            default_space=16,
        )
        problem = {"m": 128, "n": 128, "k": 128}
        with faults.injected(disk_plan("registry:")):
            with pytest.warns(RuntimeWarning, match="memory-only"):
                cold = server.handle({"op": "tune", "params": problem, "id": "c"})
        assert cold["ok"], cold
        assert cold["result"]["served_from"] == "fresh"
        assert server.registry.degraded
        assert server.registry.disk_errors == 1

        warm = server.handle({"op": "compile", "params": problem, "id": "w"})
        assert warm["ok"]
        assert warm["result"]["served_from"] == "registry"

        status = server.handle({"op": "status", "id": "s"})["result"]
        assert status["registry"]["disk_errors"] == 1
        # Nothing reached disk: a fresh registry over the same root misses.
        fresh = ArtifactRegistry(tmp_path / "reg")
        assert fresh.get(cold["result"]["key"]) is None

    def test_degraded_registry_skips_flush_instead_of_raising(self, tmp_path):
        import dataclasses

        from repro.serve.registry import INDEX_FILE, KernelArtifact

        registry = ArtifactRegistry(tmp_path / "reg")
        artifact = KernelArtifact(
            key="k" * 16,
            spec=dataclasses.asdict(SPEC),
            config=CFG.as_dict(),
            latency_us=9.0,
            ir_text="kernel {}",
            cuda_source="__global__ void k() {}",
            provenance={"gpu": "A100"},
        )
        with faults.injected(disk_plan("registry:")):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                stored = registry.put(artifact)
        assert stored is artifact and registry.degraded
        registry.flush()  # must be a silent no-op once degraded
        assert not (tmp_path / "reg" / INDEX_FILE).exists()

"""Crash-safe tuning sessions: journal durability, resume-as-replay, and
the acceptance criterion — a killed-and-resumed tune converges to the same
best config as an uninterrupted run."""

import json
import re

import pytest

from repro.cli import main
from repro.schedule.config import TileConfig
from repro.tuning.session import JOURNAL_FILE, META_FILE, TuneSession
from repro.tuning.tuners import Tuner

PROBLEM = ["--m", "256", "--n", "256", "--k", "512", "--space", "24",
           "--trials", "8", "--method", "xgb", "--seed", "3"]


def run_tune(capsys, *extra):
    rc = main(["tune", *PROBLEM, *extra])
    out = capsys.readouterr().out
    return rc, out


def best_schedule(out):
    m = re.search(r"best schedule: (.+)", out)
    assert m, out
    return m.group(1).strip()


class TestSession:
    def test_create_writes_meta(self, tmp_path):
        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64, seed=1)
        meta = json.loads((tmp_path / "s" / META_FILE).read_text())
        assert meta["m"] == 64 and meta["seed"] == 1
        assert len(s) == 0

    def test_create_refuses_existing_journal(self, tmp_path):
        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        s.log_trial(TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16), 1.0)
        s.close()
        with pytest.raises(FileExistsError, match="resume"):
            TuneSession.create(tmp_path / "s", m=64, n=64, k=64)

    def test_journal_roundtrip_including_failures(self, tmp_path):
        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        s.log_trial(TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16), 5.0)
        s.log_trial(TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16), float("inf"))
        s.close()
        again = TuneSession.load(tmp_path / "s")
        assert len(again) == 2
        assert again.trials[0][1] == 5.0
        assert again.trials[1][1] == float("inf")

    def test_duplicate_trials_journalled_once(self, tmp_path):
        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        s.log_trial(TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16), 5.0)
        s.log_trial(TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16), 5.0)
        s.close()
        lines = (tmp_path / "s" / JOURNAL_FILE).read_text().splitlines()
        assert len(lines) == 1

    def test_torn_final_line_is_dropped(self, tmp_path):
        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        s.log_trial(TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16), 5.0)
        s.close()
        journal = tmp_path / "s" / JOURNAL_FILE
        journal.write_text(journal.read_text() + '{"trial": 1, "config": {"bl')
        again = TuneSession.load(tmp_path / "s")
        assert len(again) == 1

    def test_load_rejects_non_session_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="session"):
            TuneSession.load(tmp_path)

    def test_journal_without_meta_is_a_clear_load_error(self, tmp_path):
        """A crash that lost session.json but kept the journal (the failure
        mode the durable-publish fix closes) must load-fail with the
        session message, not a random KeyError."""
        sdir = tmp_path / "s"
        sdir.mkdir()
        (sdir / JOURNAL_FILE).write_text(
            '{"trial": 0, "config": {"block_m": 32}, "latency_us": 1.0}\n'
        )
        with pytest.raises(FileNotFoundError, match="session"):
            TuneSession.load(sdir)


class TestDurability:
    """The fsync contract of the session files: metadata bytes reach disk
    before the metadata name does, and a journal's *existence* (the
    directory entry) is made durable on its first append."""

    CFG = TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16)

    def test_create_fsyncs_tmp_before_replace_and_dir_after(self, tmp_path, monkeypatch):
        import os as os_mod

        from repro.tuning import session as session_mod

        events = []
        real_fsync, real_replace = os_mod.fsync, os_mod.replace
        monkeypatch.setattr(
            session_mod.os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            session_mod.os, "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        monkeypatch.setattr(
            session_mod, "_fsync_dir", lambda path: events.append("dirsync")
        )
        TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        assert events == ["fsync", "replace", "dirsync"], events
        assert not (tmp_path / "s" / (META_FILE + ".tmp")).exists()

    def test_first_journal_append_fsyncs_directory_once(self, tmp_path, monkeypatch):
        from repro.tuning import session as session_mod

        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        dirsyncs = []
        monkeypatch.setattr(
            session_mod, "_fsync_dir", lambda path: dirsyncs.append(path)
        )
        s.log_trial(self.CFG, 1.0)
        assert dirsyncs == [s.path], "creating the journal must fsync its directory"
        s.log_trial(TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16), 2.0)
        assert len(dirsyncs) == 1, "later appends need no directory fsync"
        s.close()

    def test_reopened_journal_skips_directory_fsync(self, tmp_path, monkeypatch):
        from repro.tuning import session as session_mod

        s = TuneSession.create(tmp_path / "s", m=64, n=64, k=64)
        s.log_trial(self.CFG, 1.0)
        s.close()
        again = TuneSession.load(tmp_path / "s")
        dirsyncs = []
        monkeypatch.setattr(
            session_mod, "_fsync_dir", lambda path: dirsyncs.append(path)
        )
        again.log_trial(TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16), 2.0)
        assert dirsyncs == [], "appending to an existing journal is already durable"
        again.close()

    def test_fsync_dir_tolerates_unsyncable_directory(self, tmp_path):
        from repro.tuning.session import _fsync_dir

        _fsync_dir(tmp_path / "does-not-exist")  # must not raise


class TestResume:
    def test_truncated_journal_resumes_to_same_best(self, capsys, tmp_path):
        """Kill-at-trial-4 simulation: drop the journal's tail, resume, and
        the best config must match the uninterrupted run."""
        sdir = tmp_path / "session"
        rc, out = run_tune(capsys, "--session-dir", str(sdir))
        assert rc == 0
        baseline = best_schedule(out)
        journal = sdir / JOURNAL_FILE
        lines = journal.read_text().splitlines()
        assert len(lines) == 8
        journal.write_text("\n".join(lines[:4]) + "\n")

        rc, out = run_tune(capsys, "--resume", str(sdir))
        assert rc == 0
        assert "replaying 4 journalled trial(s)" in out
        assert best_schedule(out) == baseline
        assert len(journal.read_text().splitlines()) == 8

    def test_interrupted_run_exits_130_and_resumes(self, capsys, tmp_path, monkeypatch):
        """The full acceptance path: a run killed mid-tune (KeyboardInterrupt
        after 5 journalled trials) exits 130 with partial results saved;
        --resume completes it and reports the same best config as an
        uninterrupted baseline."""
        base_dir = tmp_path / "baseline"
        rc, out = run_tune(capsys, "--session-dir", str(base_dir))
        assert rc == 0
        baseline = best_schedule(out)

        orig_tune = Tuner.tune

        def tune_interrupted(self, n_trials, on_trial=None):
            count = 0

            def hook(cfg, latency):
                nonlocal count
                if on_trial is not None:
                    on_trial(cfg, latency)
                count += 1
                if count >= 5:
                    raise KeyboardInterrupt
            return orig_tune(self, n_trials, on_trial=hook)

        sdir = tmp_path / "killed"
        monkeypatch.setattr(Tuner, "tune", tune_interrupted)
        rc = main(["tune", *PROBLEM, "--session-dir", str(sdir)])
        captured = capsys.readouterr()
        assert rc == 130
        assert "interrupted" in captured.err
        assert f"--resume {sdir}" in captured.err
        assert len((sdir / JOURNAL_FILE).read_text().splitlines()) == 5

        monkeypatch.setattr(Tuner, "tune", orig_tune)
        rc, out = run_tune(capsys, "--resume", str(sdir))
        assert rc == 0
        assert best_schedule(out) == baseline

    def test_resume_restores_problem_from_meta(self, capsys, tmp_path):
        sdir = tmp_path / "session"
        rc, out = run_tune(capsys, "--session-dir", str(sdir))
        assert rc == 0
        baseline = best_schedule(out)
        # Resume with *no* problem flags at all.
        rc = main(["tune", "--resume", str(sdir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert best_schedule(out) == baseline

    def test_tune_without_problem_or_resume_errors(self, capsys):
        rc = main(["tune"])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

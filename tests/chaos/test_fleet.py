"""Distributed tuning fleet chaos suite (docs/distributed.md).

The contract under test: a sharded fleet sweep is **bitwise-identical** to
a serial ``Measurer.sweep`` — every latency and the best config — at any
fleet width, with remote workers in the mix, under injected worker death
at every shard boundary, under lost dispatches, and across mid-sweep
fleet resizes. Work stealing and retries may re-measure configs; the
deterministic simulator guarantees the duplicates carry identical bits,
and first-write-wins merging keeps the output stable.
"""

import math
import threading

import pytest

from repro import faults
from repro.core.errors import WorkerCrash
from repro.gpusim.config import A100
from repro.tensor.operation import GemmSpec
from repro.tuning.fleet import (
    FleetCoordinator,
    LocalProcessWorker,
    RemoteServeWorker,
    fleet_sweep,
    parse_endpoint,
)
from repro.tuning.measure import Measurer, _cfg_token
from repro.tuning.space import SpaceOptions, enumerate_space

SPEC = GemmSpec("fleet", 1, 128, 128, 256)


@pytest.fixture(scope="module")
def space():
    s = enumerate_space(SPEC, A100, SpaceOptions(max_size=12))
    assert len(s) >= 8
    return s


@pytest.fixture(scope="module")
def serial(space):
    """The fault-free serial reference every fleet run must reproduce."""
    return Measurer(A100, via_ir=False).sweep(SPEC, space)


def run_fleet(space, **kwargs):
    coord = FleetCoordinator(SPEC, space, gpu=A100, via_ir=False, **kwargs)
    return coord.run(), coord


class TestIdentity:
    def test_fleet_matches_serial(self, space, serial):
        result, coord = run_fleet(space, workers=3)
        assert result.latencies == serial
        tel = result.telemetry
        assert tel.worker_deaths == 0 and tel.shard_losses == 0
        assert tel.results_streamed >= len(space)
        assert tel.n_workers_peak == 3

    def test_single_worker_fleet_matches_serial(self, space, serial):
        result, _ = run_fleet(space, workers=1)
        assert result.latencies == serial

    def test_shard_size_one_matches_serial(self, space, serial):
        result, coord = run_fleet(space, workers=2, shard_size=1)
        assert result.latencies == serial
        assert result.telemetry.n_shards == len(space)

    def test_best_index_agrees_with_serial_argmin(self, space, serial):
        result, _ = run_fleet(space, workers=2)
        assert result.best_index() == min(
            range(len(serial)), key=lambda i: serial[i]
        )

    def test_empty_space_returns_empty(self):
        result, _ = run_fleet([], workers=2)
        assert result.latencies == []


class TestWorkerDeath:
    def test_death_at_every_shard_boundary_recovers_identically(self, space, serial):
        """Every shard's first dispatch dies at its first trial (the
        ``attempt=0`` token family); the requeued attempt completes and the
        merged sweep is bitwise-identical to the serial run."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", match="|attempt=0|")],
            seed=1,
        )
        with faults.injected(plan):
            result, coord = run_fleet(space, workers=2, shard_size=3)
        assert result.latencies == serial
        tel = result.telemetry
        assert tel.worker_deaths >= tel.n_shards
        assert tel.shard_losses >= tel.n_shards

    def test_mid_shard_death_keeps_streamed_results(self, space, serial):
        """A worker dying mid-shard loses only the unmeasured remainder:
        results streamed before the death are committed exactly once, and
        the requeued tail completes identically."""
        victim = space[len(space) // 2]
        plan = faults.FaultPlan(
            [
                faults.FaultRule(
                    "fleet", "worker-death",
                    match=f"|attempt=0|{_cfg_token(SPEC, victim)}",
                )
            ],
            seed=1,
        )
        # steal=False keeps the death deterministic: with stealing on, an
        # idle slot may clone the remainder and cover the victim at
        # attempt=1 (where the rule does not fire) before the original
        # worker ever reaches it at attempt=0.
        with faults.injected(plan):
            result, _ = run_fleet(
                space, workers=2, shard_size=len(space), steal=False
            )
        assert result.latencies == serial
        assert result.telemetry.worker_deaths == 1

    def test_random_deaths_any_width_identical(self, space, serial):
        """Token-hashed death decisions are scheduling-independent: the same
        plan over the same space converges to the serial bits at every
        fleet width."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", rate=0.3,
                              match="|attempt=0|")],
            seed=3,
        )
        for workers in (1, 3):
            with faults.injected(plan):
                result, _ = run_fleet(space, workers=workers, shard_size=2)
            assert result.latencies == serial

    def test_persistent_shard_killer_aborts_with_worker_crash(self, space):
        """A shard that dies on every attempt exhausts max_shard_retries and
        the sweep aborts loudly instead of spinning forever."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", match="worker|shard=0|")],
            seed=1,
        )
        with faults.injected(plan):
            with pytest.raises(WorkerCrash, match="shard 0"):
                run_fleet(space, workers=2, shard_size=4, max_shard_retries=1)


class TestShardLoss:
    def test_lost_dispatch_requeues_whole_shard(self, space, serial):
        """A coordinator-side crash (lost dispatch) drops the shard before
        the worker ever sees it; the shard is requeued and the sweep still
        matches the serial bits. The worker is kept — no death counted."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "crash", match="coordinator|",
                              max_hits=2)],
            seed=1,
        )
        with faults.injected(plan):
            result, _ = run_fleet(space, workers=2, shard_size=3)
        assert result.latencies == serial
        tel = result.telemetry
        assert tel.shard_losses == 2
        assert tel.worker_deaths == 0

    def test_broad_worker_death_rule_cannot_kill_coordinator(self, space, serial):
        """The coordinator's dispatch site narrows injection to crash-kind
        faults, so a site-wide worker-death rule kills only fleet workers —
        never the coordinating (test) process."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", rate=0.25,
                              match="attempt=0")],
            seed=2,
        )
        with faults.injected(plan):
            result, _ = run_fleet(space, workers=2, shard_size=2)
        assert result.latencies == serial  # and: we are still alive


class TestElasticity:
    def test_scale_up_mid_sweep_identical(self, space, serial):
        """Growing the fleet after the first results stream in changes
        wall-clock, never bits."""
        coord = FleetCoordinator(
            SPEC, space, gpu=A100, via_ir=False, workers=1, shard_size=2
        )
        grown = threading.Event()

        def on_result(idx, latency, persist):
            if not grown.is_set():
                grown.set()
                coord.scale_to(3)

        result = coord.run(on_result=on_result)
        assert grown.is_set()
        assert result.latencies == serial
        assert result.telemetry.resizes == 1
        assert result.telemetry.n_workers_peak >= 3

    def test_scale_down_mid_sweep_identical(self, space, serial):
        coord = FleetCoordinator(
            SPEC, space, gpu=A100, via_ir=False, workers=3, shard_size=2
        )
        shrunk = threading.Event()

        def on_result(idx, latency, persist):
            if not shrunk.is_set():
                shrunk.set()
                coord.scale_to(1)

        result = coord.run(on_result=on_result)
        assert result.latencies == serial
        assert result.telemetry.resizes == 1

    def test_scale_to_current_width_is_a_noop(self, space):
        coord = FleetCoordinator(SPEC, space, gpu=A100, via_ir=False, workers=2)
        result = coord.run()
        coord.scale_to(2)
        assert coord.telemetry.resizes == 0
        assert len(result.latencies) == len(space)

    def test_resize_under_worker_death_identical(self, space, serial):
        """The stress combination the tentpole promises: injected deaths
        AND a mid-sweep resize, still bitwise-identical."""
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", rate=0.4,
                              match="|attempt=0|")],
            seed=5,
        )
        coord = FleetCoordinator(
            SPEC, space, gpu=A100, via_ir=False, workers=1, shard_size=2
        )
        resized = threading.Event()

        def on_result(idx, latency, persist):
            if not resized.is_set():
                resized.set()
                coord.scale_to(3)

        with faults.injected(plan):
            result = coord.run(on_result=on_result)
        assert result.latencies == serial


class TestWorkStealing:
    def test_straggler_shard_is_stolen_and_identical(self, space, serial):
        """One shard covers the whole space and its first trial hangs; an
        idle slot steals the unmeasured remainder, the duplicates merge
        first-write-wins, and the output still equals the serial bits."""
        plan = faults.FaultPlan(
            [
                faults.FaultRule(
                    "fleet", "hang", hang_s=0.75,
                    match=f"|attempt=0|{_cfg_token(SPEC, space[0])}",
                )
            ],
            seed=1,
        )
        with faults.injected(plan):
            result, _ = run_fleet(
                space, workers=3, shard_size=len(space), steal=True
            )
        assert result.latencies == serial
        assert result.telemetry.steals >= 1

    def test_steal_disabled_still_identical(self, space, serial):
        result, _ = run_fleet(space, workers=3, shard_size=len(space), steal=False)
        assert result.latencies == serial
        assert result.telemetry.steals == 0


class TestFleetSweep:
    def test_fleet_sweep_equals_measurer_sweep(self, space, serial):
        m = Measurer(A100, via_ir=False)
        latencies, tel = fleet_sweep(m, SPEC, space, workers=2)
        assert latencies == serial
        assert tel.results_streamed >= len(space)
        # Every config is now a memory hit: a tuner running on this
        # measurer replays the fleet's answers for free.
        again = m.sweep(SPEC, space)
        assert again == serial
        assert m.n_compiled == 0  # the fleet compiled, not this process

    def test_cache_hits_never_touch_the_fleet(self, space, serial):
        m = Measurer(A100, via_ir=False)
        m.sweep(SPEC, space)  # warm every config serially
        latencies, tel = fleet_sweep(m, SPEC, space, workers=2)
        assert latencies == serial
        assert tel.shards_dispatched == 0 and tel.results_streamed == 0

    def test_duplicates_within_batch_dispatch_once(self, space, serial):
        m = Measurer(A100, via_ir=False)
        doubled = list(space) + list(space)
        latencies, tel = fleet_sweep(m, SPEC, doubled, workers=2)
        assert latencies == serial + serial
        assert tel.results_streamed <= len(space) + tel.duplicates

    def test_crash_quarantined_failures_not_persisted(self, space, tmp_path):
        """A config whose trials always crash is FAILED in the fleet answer
        but must not poison the disk cache (run property, not config
        property) — matching the serial measurer's persist semantics."""
        from repro.tuning.cache import MeasurementCache

        victim = space[0]
        plan = faults.FaultPlan(
            [faults.FaultRule("compile", "crash",
                              match=_cfg_token(SPEC, victim))],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, cache=MeasurementCache(tmp_path))
        with faults.injected(plan):
            latencies, _ = fleet_sweep(m, SPEC, space, workers=2)
        assert latencies[0] == math.inf
        assert all(math.isfinite(x) for x in latencies[1:])
        # A fresh measurer over the same disk cache re-measures the victim
        # cleanly: the crash-FAILED placeholder was never persisted.
        m2 = Measurer(A100, via_ir=False, cache=MeasurementCache(tmp_path))
        assert math.isfinite(m2.measure(SPEC, victim))

    def test_fleet_with_faults_equals_serial_end_to_end(self, space, serial):
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", rate=0.3,
                              match="|attempt=0|")],
            seed=9,
        )
        m = Measurer(A100, via_ir=False)
        with faults.injected(plan):
            latencies, _ = fleet_sweep(m, SPEC, space, workers=3, shard_size=2)
        assert latencies == serial


class TestRemoteWorkers:
    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.serve.server import ReproServer

        server = ReproServer(
            socket_path=str(tmp_path / "w.sock"), via_ir=False, workers=4,
        )
        server.start()
        try:
            from repro.serve.client import ServeClient

            probe = ServeClient(socket_path=server.socket_path, timeout=30)
            assert probe.wait_until_ready(timeout=10)
            yield server
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def test_remote_only_fleet_matches_serial(self, daemon, space, serial):
        m = Measurer(A100, via_ir=False)
        latencies, tel = fleet_sweep(
            m, SPEC, space, workers=0, endpoints=(daemon.socket_path,)
        )
        assert latencies == serial
        assert tel.n_workers_peak == 1

    def test_mixed_local_and_remote_matches_serial(self, daemon, space, serial):
        result, _ = run_fleet(
            space, workers=2, endpoints=(daemon.socket_path,), shard_size=2
        )
        assert result.latencies == serial
        assert result.telemetry.n_workers_peak == 3

    def test_via_ir_mismatch_is_refused(self, daemon, space):
        """A daemon measuring in the other via_ir mode would return
        latencies that are not bitwise-comparable; the coordinator must
        refuse it rather than silently merge foreign bits."""
        coord = FleetCoordinator(
            SPEC, space[:4], gpu=A100, via_ir=True, workers=0,
            endpoints=(daemon.socket_path,), max_shard_retries=0,
        )
        with pytest.raises(WorkerCrash, match="via_ir"):
            coord.run()

    def test_dead_endpoint_does_not_hang_the_sweep(self, tmp_path, space, serial):
        """An unreachable endpoint retires its seat after repeated start
        failures; local workers finish the sweep, bits intact."""
        result, _ = run_fleet(
            space, workers=2, endpoints=(str(tmp_path / "nope.sock"),),
        )
        assert result.latencies == serial

    def test_all_endpoints_dead_aborts_not_hangs(self, tmp_path, space):
        coord = FleetCoordinator(
            SPEC, space, gpu=A100, via_ir=False, workers=0,
            endpoints=(str(tmp_path / "nope.sock"),),
        )
        with pytest.raises(WorkerCrash, match="slot"):
            coord.run()


class TestPlumbing:
    def test_parse_endpoint_tcp(self):
        assert parse_endpoint("10.0.0.5:8441") == {"host": "10.0.0.5", "port": 8441}
        assert parse_endpoint(":8441") == {"host": "127.0.0.1", "port": 8441}

    def test_parse_endpoint_socket_path(self):
        assert parse_endpoint("/tmp/w.sock") == {"socket_path": "/tmp/w.sock"}
        assert parse_endpoint("/tmp/w:1.sock") == {"socket_path": "/tmp/w:1.sock"}

    def test_needs_at_least_one_worker(self, space):
        with pytest.raises(ValueError, match="at least one"):
            FleetCoordinator(SPEC, space, workers=0)

    def test_worker_classes_expose_kind(self):
        assert LocalProcessWorker.kind == "process"
        assert RemoteServeWorker.kind == "remote"

    def test_no_leaked_children_after_faulted_fleet(self, space):
        """Zombie-reap at fleet scale: after a sweep with injected deaths
        and an explicit scale-down, no fleet worker process survives."""
        import multiprocessing

        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", rate=0.5,
                              match="|attempt=0|")],
            seed=4,
        )
        with faults.injected(plan):
            result, _ = run_fleet(space, workers=3, shard_size=2)
        assert len(result.latencies) == len(space)
        deadline = 5.0
        import time

        t0 = time.monotonic()
        while time.monotonic() - t0 < deadline:
            alive = [p for p in multiprocessing.active_children() if p.is_alive()]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, f"fleet leaked worker processes: {alive}"


class TestCircuitBreaker:
    """State machine of the per-slot endpoint breaker: closed -> open on
    consecutive failures, half-open probe after an escalating cooldown,
    closed again on probe success, exhausted after too many opens."""

    def _make(self, **kwargs):
        from repro.tuning.fleet import CircuitBreaker

        defaults = dict(threshold=3, cooldown_s=0.05, max_opens=5)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_starts_closed_and_admits(self):
        breaker = self._make()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker = self._make(threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()

    def test_threshold_consecutive_failures_trip_open(self):
        breaker = self._make(threshold=3)
        opened = [breaker.record_failure() for _ in range(3)]
        assert opened == [False, False, True]
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = self._make(threshold=2)
        breaker.record_failure()
        assert not breaker.record_success()  # closed stays closed: no rejoin
        breaker.record_failure()
        assert breaker.state == "closed", "non-consecutive failures must not trip"

    def test_cooldown_admits_exactly_one_probe(self):
        import time

        breaker = self._make(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow(), "cooldown elapsed: one probe admitted"
        assert breaker.state == "half-open"
        assert not breaker.allow(), "the probe is out; no second dispatch"

    def test_probe_success_closes_and_counts_a_rejoin(self):
        import time

        breaker = self._make(threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        assert breaker.record_success() is True  # a genuine rejoin
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_escalating_cooldown(self):
        import time

        breaker = self._make(threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        assert breaker._cooldown() == pytest.approx(0.01)
        time.sleep(0.02)
        assert breaker.allow()
        assert breaker.record_failure()  # the probe died: straight back open
        assert breaker.state == "open" and breaker.opens == 2
        assert breaker._cooldown() == pytest.approx(0.02)

    def test_cooldown_escalation_is_capped_at_16x(self):
        breaker = self._make(threshold=1, cooldown_s=0.01, max_opens=100)
        for _ in range(10):
            breaker.state = "half-open"
            breaker.record_failure()
        assert breaker._cooldown() == pytest.approx(0.01 * 16)

    def test_exhausted_after_max_opens(self):
        breaker = self._make(threshold=1, max_opens=2)
        breaker.record_failure()
        assert not breaker.exhausted
        breaker.state = "half-open"
        breaker.record_failure()
        assert breaker.exhausted

    def test_release_probe_returns_the_slot_without_a_verdict(self):
        import time

        breaker = self._make(threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.release_probe()  # nothing to probe with; hand the slot back
        assert breaker.allow(), "released probe slot must be reusable"

    def test_failures_while_open_do_not_double_count(self):
        breaker = self._make(threshold=1)
        assert breaker.record_failure()
        assert breaker.record_failure() is False
        assert breaker.opens == 1


class TestCircuitBreakerRejoin:
    def test_late_daemon_rejoins_after_breaker_opens(self, tmp_path, space, serial):
        """A remote-only fleet against an endpoint whose daemon boots late:
        the breaker opens on the connect-refused storm, a half-open probe
        finds the recovered daemon, the seat rejoins, and the merged sweep
        is bitwise-identical to serial."""
        import time

        from repro.serve.server import ReproServer

        sock = str(tmp_path / "late.sock")
        coord = FleetCoordinator(
            SPEC, space, gpu=A100, via_ir=False, workers=0,
            endpoints=(sock,), shard_size=2,
            breaker_cooldown_s=0.1, breaker_max_opens=1000,
        )
        started = {}

        def boot():
            time.sleep(0.8)
            server = ReproServer(socket_path=sock, via_ir=False, workers=2)
            server.start()
            started["server"] = server

        booter = threading.Thread(target=boot)
        booter.start()
        try:
            result = coord.run()
        finally:
            booter.join()
            server = started.get("server")
            if server is not None:
                server.stop()
                server.shutdown(timeout=10)
        assert result.latencies == serial
        tel = result.telemetry
        assert tel.breaker_opens >= 1, "the dead endpoint never tripped its breaker"
        assert tel.breaker_rejoins >= 1, "the recovered endpoint never rejoined"
        assert "circuit-breaker" in tel.summary()

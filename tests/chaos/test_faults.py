"""The fault-injection machinery itself: plans, determinism, activation."""

import os

import pytest

from repro import faults
from repro.core.errors import FaultInjected, SimulationError


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultRule("warp-scheduler", "crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultRule("compile", "spontaneous-combustion")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            faults.FaultRule("compile", "crash", rate=1.5)

    def test_wildcard_site_allowed(self):
        faults.FaultRule("*", "crash")


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = faults.FaultPlan(
            [
                faults.FaultRule("worker", "worker-death", rate=0.25, match="#a0"),
                faults.FaultRule("simulate", "corrupt-latency", corrupt_factor=7.0),
            ],
            seed=42,
        )
        again = faults.FaultPlan.from_json(plan.to_json())
        assert again.seed == 42
        assert again.rules == plan.rules

    def test_compact_parse(self):
        plan = faults.FaultPlan.parse("worker:crash:0.5,simulate:hang", seed=3)
        assert plan.seed == 3
        assert plan.rules[0] == faults.FaultRule("worker", "crash", rate=0.5)
        assert plan.rules[1] == faults.FaultRule("simulate", "hang")

    def test_compact_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="site:kind"):
            faults.FaultPlan.parse("worker")

    def test_rate_decision_is_deterministic(self):
        rule = faults.FaultRule("compile", "crash", rate=0.5)
        a = faults.FaultPlan([rule], seed=1)
        b = faults.FaultPlan([rule], seed=1)
        tokens = [f"cfg-{i}" for i in range(64)]
        da = [a.matching("compile", t, ("crash",)) is not None for t in tokens]
        db = [b.matching("compile", t, ("crash",)) is not None for t in tokens]
        assert da == db
        # Rate ~0.5 must actually split the population.
        assert 8 < sum(da) < 56

    def test_seed_changes_decisions(self):
        rule = faults.FaultRule("compile", "crash", rate=0.5)
        tokens = [f"cfg-{i}" for i in range(64)]
        d1 = [
            faults.FaultPlan([rule], seed=1).matching("compile", t, ("crash",)) is not None
            for t in tokens
        ]
        d2 = [
            faults.FaultPlan([rule], seed=2).matching("compile", t, ("crash",)) is not None
            for t in tokens
        ]
        assert d1 != d2

    def test_match_substring_targets_tokens(self):
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash", match="#a0")])
        assert plan.matching("compile", "cfg#a0", ("crash",)) is not None
        assert plan.matching("compile", "cfg#a1", ("crash",)) is None

    def test_max_hits_caps_firing(self):
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash", max_hits=2)])
        fired = [plan.matching("compile", f"t{i}", ("crash",)) is not None for i in range(5)]
        assert fired == [True, True, False, False, False]

    def test_duplicate_rules_count_hits_separately(self):
        rule = faults.FaultRule("compile", "crash", max_hits=1)
        plan = faults.FaultPlan([rule, rule])
        assert plan.matching("compile", "t0", ("crash",)) is not None
        assert plan.matching("compile", "t1", ("crash",)) is not None
        assert plan.matching("compile", "t2", ("crash",)) is None


class TestActivation:
    def test_injected_context_restores_previous_state(self):
        faults.deactivate()
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")])
        with faults.injected(plan):
            assert faults.active_plan() is plan
            assert os.environ.get(faults.ENV_VAR) == plan.to_json()
        assert faults.active_plan() is None
        assert faults.ENV_VAR not in os.environ

    def test_injected_nests(self):
        faults.deactivate()
        outer = faults.FaultPlan([faults.FaultRule("compile", "crash")])
        inner = faults.FaultPlan([faults.FaultRule("simulate", "hang")])
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_env_plan_adopted_by_fresh_process_state(self, monkeypatch):
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=9)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        # Simulate a freshly spawned worker: module state not yet resolved.
        monkeypatch.setattr(faults, "_active", None)
        monkeypatch.setattr(faults, "_env_checked", False)
        adopted = faults.active_plan()
        assert adopted is not None and adopted.seed == 9

    def test_inject_noop_without_plan(self):
        faults.deactivate()
        faults.inject("compile", token="anything")  # must not raise

    def test_inject_crash_raises_fault(self):
        with faults.injected(faults.FaultPlan([faults.FaultRule("compile", "crash")])):
            with pytest.raises(FaultInjected) as ei:
                faults.inject("compile", token="t")
        assert ei.value.site == "compile"
        assert ei.value.stage == "fault"

    def test_simulate_crash_raises_simulation_error(self):
        with faults.injected(faults.FaultPlan([faults.FaultRule("simulate", "crash")])):
            with pytest.raises(SimulationError):
                faults.inject("simulate", token="t")

    def test_corrupt_multiplies(self):
        rule = faults.FaultRule("simulate", "corrupt-latency", corrupt_factor=10.0)
        with faults.injected(faults.FaultPlan([rule])):
            assert faults.corrupt("simulate", 2.0, token="t") == 20.0
        assert faults.corrupt("simulate", 2.0, token="t") == 2.0

    def test_ambient_token_reaches_nested_site(self):
        plan = faults.FaultPlan([faults.FaultRule("simulate", "crash", match="special")])
        with faults.injected(plan):
            faults.inject("simulate")  # no ambient token: no match
            with faults.push_token("special-trial"):
                with pytest.raises(SimulationError):
                    faults.inject("simulate")
            faults.inject("simulate")  # token popped again


class TestDelayKind:
    def test_delay_sleeps_then_proceeds(self):
        import time

        rule = faults.FaultRule("registry", "delay", delay_s=0.05, jitter=0.0)
        with faults.injected(faults.FaultPlan([rule])):
            t0 = time.perf_counter()
            faults.inject("registry", token="get:k")  # must NOT raise
            elapsed = time.perf_counter() - t0
        assert elapsed >= 0.045, "delay rule must actually sleep"

    def test_jitter_is_deterministic_per_event(self):
        rule = faults.FaultRule("registry", "delay", delay_s=0.1, jitter=0.5)
        a = faults._delay_seconds(rule, 7, "registry", "get:k1")
        b = faults._delay_seconds(rule, 7, "registry", "get:k1")
        assert a == b, "same (seed, site, token) must give the same delay"

    def test_jitter_stays_within_bounds_and_varies(self):
        rule = faults.FaultRule("registry", "delay", delay_s=0.1, jitter=0.5)
        delays = [
            faults._delay_seconds(rule, 7, "registry", f"get:k{i}")
            for i in range(16)
        ]
        assert all(0.05 <= d <= 0.15 for d in delays), delays
        assert len(set(delays)) > 1, "jitter must vary across events"

    def test_zero_jitter_is_exact(self):
        rule = faults.FaultRule("registry", "delay", delay_s=0.07, jitter=0.0)
        assert faults._delay_seconds(rule, 1, "registry", "t") == 0.07

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            faults.FaultRule("registry", "delay", delay_s=-0.1)

    def test_jitter_bounds_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            faults.FaultRule("registry", "delay", jitter=1.5)


class TestDiskSite:
    def test_disk_crash_raises_real_oserror_not_fault_injected(self):
        """The degrade-to-memory recovery paths catch OSError — the disk
        site must raise exactly what a full disk raises."""
        import errno

        with faults.injected(faults.FaultPlan([faults.FaultRule("disk", "crash")])):
            with pytest.raises(OSError) as ei:
                faults.inject("disk", token="cache:k", kinds=("crash",))
        assert not isinstance(ei.value, FaultInjected)
        assert ei.value.errno == errno.ENOSPC
        assert "cache:k" in str(ei.value)

    def test_disk_site_respects_match(self):
        rule = faults.FaultRule("disk", "crash", match="journal:")
        with faults.injected(faults.FaultPlan([rule])):
            faults.inject("disk", token="cache:k", kinds=("crash",))  # no match
            with pytest.raises(OSError):
                faults.inject("disk", token="journal:session.jsonl", kinds=("crash",))

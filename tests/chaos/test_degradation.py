"""Graceful degradation: the variant ladder in the compiler, the model
runtime's roofline fallback, and the suite runner's ``degraded_best``."""

import pytest

from repro import faults
from repro.core.compiler import VARIANTS, AlcopCompiler
from repro.core.errors import CompileError, DegradationEvent, ReproError
from repro.gpusim.config import A100
from repro.models.graph import GemmOp, ModelGraph
from repro.models.runtime import estimate_model_latency, roofline_fallback_latency
from repro.tensor.operation import GemmSpec
from repro.tuning.measure import Measurer
from repro.tuning.space import SpaceOptions, enumerate_space
from repro.workloads.suite import DEGRADATION_LADDER, degraded_best

SPEC = GemmSpec("deg", 1, 256, 256, 512)


def _fail_variants(*variants, seed=1):
    """A plan that crashes the compiler-driver build of the given rungs."""
    return faults.FaultPlan(
        [faults.FaultRule("build", "crash", match=f"variant={v};") for v in variants],
        seed=seed,
    )


class TestCompilerLadder:
    def test_top_rung_failure_steps_down_once(self):
        c = AlcopCompiler(search="exhaustive")
        with faults.injected(_fail_variants("alcop")):
            latency = c.gemm_latency(SPEC)
        assert latency > 0
        assert len(c.degradations) == 1
        ev = c.degradations[0]
        assert (ev.from_variant, ev.to_variant) == ("alcop", "alcop-no-ml")
        assert ev.stage == "fault"
        assert ev.op == SPEC.name

    def test_resolved_rung_is_reused_without_new_events(self):
        c = AlcopCompiler(search="exhaustive")
        plan = _fail_variants("alcop")
        with faults.injected(plan):
            first = c.gemm_latency(SPEC)
            again = c.gemm_latency(SPEC)
        assert first == again
        assert len(c.degradations) == 1

    def test_every_rung_failing_raises_after_full_ladder(self):
        c = AlcopCompiler(search="exhaustive")
        with faults.injected(_fail_variants(*VARIANTS)):
            with pytest.raises(ReproError):
                c.compile_with_fallback(SPEC)
        assert [ev.from_variant for ev in c.degradations] == list(VARIANTS)
        assert c.degradations[-1].to_variant == "roofline"

    def test_total_failure_is_cached(self):
        c = AlcopCompiler(search="exhaustive")
        with faults.injected(_fail_variants(*VARIANTS)):
            with pytest.raises(ReproError):
                c.compile_with_fallback(SPEC)
            n = len(c.degradations)
            with pytest.raises(ReproError):
                c.compile_with_fallback(SPEC)
        assert len(c.degradations) == n  # no duplicate ladder walk

    def test_degrade_false_raises_immediately(self):
        c = AlcopCompiler(search="exhaustive", degrade=False)
        with faults.injected(_fail_variants("alcop")):
            with pytest.raises(Exception):
                c.gemm_latency(SPEC)
        assert not c.degradations


class TestSearchErrors:
    def test_empty_space_names_spec_and_variant(self, monkeypatch):
        import repro.core.compiler as compiler_mod

        monkeypatch.setattr(compiler_mod, "enumerate_space", lambda *a, **k: [])
        c = AlcopCompiler(search="exhaustive")
        with pytest.raises(CompileError, match="deg") as ei:
            c.compile(SPEC)
        assert "alcop" in str(ei.value)
        assert ei.value.stage == "compile"


class TestModelRuntime:
    def test_model_estimate_survives_total_op_failure(self):
        graph = ModelGraph(name="toy", gemm_ops=[GemmOp(spec=SPEC, count=2)])
        c = AlcopCompiler(search="exhaustive")
        with faults.injected(_fail_variants(*VARIANTS)):
            result = estimate_model_latency(graph, c, backend_name="alcop")
        assert result.gemm_us == 0.0
        assert result.fallback_us == pytest.approx(
            2 * roofline_fallback_latency(SPEC, A100) * c.fallback_factor
        )
        assert result.total_us > 0
        assert result.n_degraded_ops == 1
        assert result.degradations[-1].to_variant == "roofline"

    def test_partial_ladder_step_is_surfaced(self):
        graph = ModelGraph(name="toy", gemm_ops=[GemmOp(spec=SPEC, count=1)])
        c = AlcopCompiler(search="exhaustive")
        with faults.injected(_fail_variants("alcop")):
            result = estimate_model_latency(graph, c, backend_name="alcop")
        assert result.fallback_us == 0.0
        assert result.gemm_us > 0.0
        assert [ev.to_variant for ev in result.degradations] == ["alcop-no-ml"]

    def test_clean_run_records_nothing(self):
        graph = ModelGraph(name="toy", gemm_ops=[GemmOp(spec=SPEC, count=1)])
        result = estimate_model_latency(
            graph, AlcopCompiler(search="exhaustive"), backend_name="alcop"
        )
        assert result.degradations == []
        assert result.n_degraded_ops == 0


class TestDegradedBest:
    def test_clean_space_uses_requested_variant(self):
        m = Measurer(A100, via_ir=False)
        space = enumerate_space(SPEC, A100, SpaceOptions(max_size=30))
        cfg, latency, used = degraded_best(m, SPEC, space, variant="alcop")
        assert used == "alcop" and cfg is not None and latency > 0

    def test_faulted_rung_steps_down(self):
        events = []
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=1)
        m = Measurer(A100, via_ir=False, retries=0, backoff_s=0.001)
        space = enumerate_space(SPEC, A100, SpaceOptions(max_size=10))
        with faults.injected(plan):
            cfg, latency, used = degraded_best(m, SPEC, space, events=events)
        assert used == "roofline" and cfg is None
        assert latency == pytest.approx(roofline_fallback_latency(SPEC, A100))
        assert [ev.from_variant for ev in events] == list(DEGRADATION_LADDER)

    def test_event_dataclass_renders(self):
        ev = DegradationEvent(
            op="x", from_variant="alcop", to_variant="tvm", stage="compile", reason="r"
        )
        assert "alcop" in str(ev) and "tvm" in str(ev)

"""Overload chaos: sustained 4x traffic with injected service delays.

The acceptance criterion for the overload-resilience layer: a daemon
offered Poisson traffic at four times its capacity, with a ``delay``
fault stretching every registry read, must **shed rather than hang** —
every request gets an answer (success or a typed error envelope), no
worker thread dies, and after the storm the warm path still serves
``served_from == "registry"``.
"""

import random
import threading
import time

import pytest

from repro import faults
from repro.core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServeError,
)
from repro.serve.client import ServeClient
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import ReproServer

SEED = 0xC4A05
#: Injected per-request service delay at the registry read (seconds).
DELAY_S = 0.03
WORKERS = 2
MAX_QUEUE = 4
N_REQUESTS = 40
#: Offered load: 4x the daemon's estimated capacity (workers / delay).
OVERLOAD_MULT = 4.0
DEADLINE_S = 5.0
CLIENT_TIMEOUT_S = 30.0

PROBLEM = {"m": 128, "n": 128, "k": 128}


@pytest.fixture
def delayed_server(tmp_path):
    server = ReproServer(
        socket_path=str(tmp_path / "soak.sock"),
        registry=ArtifactRegistry(tmp_path / "reg"),
        workers=WORKERS,
        max_queue=MAX_QUEUE,
        default_space=16,
    )
    server.start()
    try:
        yield server
    finally:
        server.stop()
        server.shutdown(timeout=30)


def _storm(server, n_requests, rate_rps, rng):
    """Offer ``n_requests`` warm compiles at Poisson rate ``rate_rps``;
    classify every outcome. A client-timeout is a hang — the one thing
    the daemon must never do."""
    offsets, t = [], 0.0
    for _ in range(n_requests):
        t += rng.expovariate(rate_rps)
        offsets.append(t)

    lock = threading.Lock()
    outcomes = {"ok": 0, "shed": 0, "deadline": 0, "error": 0, "hang": 0}

    def one(offset, t_start):
        wait = t_start + offset - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        client = ServeClient(
            socket_path=server.socket_path,
            timeout=CLIENT_TIMEOUT_S,
            deadline_s=DEADLINE_S,
        )
        try:
            result = client.compile(**PROBLEM)
            with lock:
                outcomes["ok"] += 1
                assert result["served_from"] == "registry"
        except OverloadedError:
            with lock:
                outcomes["shed"] += 1
        except DeadlineExceededError:
            with lock:
                outcomes["deadline"] += 1
        except ServeError as e:
            with lock:
                outcomes["hang" if "timed out" in str(e) else "error"] += 1

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=one, args=(off, t_start)) for off in offsets
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    return outcomes


class TestSustainedOverload:
    def test_4x_load_sheds_not_hangs(self, delayed_server):
        server = delayed_server
        client = ServeClient(socket_path=server.socket_path, timeout=600)
        assert client.wait_until_ready(timeout=30)
        # Warm the soak shape before the delay fault goes live, so every
        # storm request is a registry hit with a known service time.
        warmup = client.tune(**PROBLEM)
        assert warmup["served_from"] == "fresh"

        rng = random.Random(SEED)
        plan = faults.FaultPlan(
            [faults.FaultRule("registry", "delay", match="get:",
                              delay_s=DELAY_S, jitter=0.5)],
            seed=SEED,
        )
        with faults.injected(plan):
            rate = OVERLOAD_MULT * WORKERS / DELAY_S
            outcomes = _storm(server, N_REQUESTS, rate, rng)

        # Every request answered: success or a typed envelope, never a hang
        # or an unclassified transport death.
        assert outcomes["hang"] == 0, outcomes
        assert outcomes["error"] == 0, outcomes
        answered = sum(outcomes.values())
        assert answered == N_REQUESTS, outcomes
        # 4x sustained load must actually engage admission control, yet the
        # daemon keeps serving — degraded, not collapsed.
        assert outcomes["shed"] > 0, outcomes
        assert outcomes["ok"] > 0, outcomes
        assert server.counters["requests_shed"] >= outcomes["shed"]

        # No worker thread died in the storm.
        alive = [
            t for t in server._threads
            if t.name.startswith("repro-serve-worker") and t.is_alive()
        ]
        assert len(alive) == WORKERS

        # Post-storm the daemon is whole: healthy and the warm path intact.
        health = client.health()
        assert health["state"] == "ready"
        post = client.compile(**PROBLEM)
        assert post["served_from"] == "registry"
        assert post["stages"] == {}

"""Measurer fault tolerance: worker death, hangs, crashes, quarantine.

Every test drives a real multi-process sweep under a deterministic
:class:`~repro.faults.FaultPlan` and asserts the sweep *completes* with
the documented recovery — never aborts, never deadlocks.
"""

import math

import pytest

from repro import faults
from repro.gpusim.config import A100
from repro.tensor.operation import GemmSpec
from repro.tuning import FAILED
from repro.tuning.measure import Measurer, _cfg_token
from repro.tuning.space import SpaceOptions, enumerate_space

SPEC = GemmSpec("chaos", 1, 128, 128, 256)


@pytest.fixture(scope="module")
def space():
    s = enumerate_space(SPEC, A100, SpaceOptions(max_size=8))
    assert len(s) >= 4
    return s


@pytest.fixture(scope="module")
def clean(space):
    """Fault-free reference sweep."""
    return Measurer(A100, via_ir=False).sweep(SPEC, space)


class TestWorkerDeath:
    def test_first_attempt_death_recovers_identically(self, space, clean):
        """Every trial's first attempt hard-dies (os._exit); retries land
        and the sweep is bitwise identical to the fault-free run."""
        plan = faults.FaultPlan(
            [faults.FaultRule("worker", "worker-death", match="#a0")], seed=1
        )
        m = Measurer(A100, via_ir=False, jobs=2, retries=2)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert got == clean
        assert m.n_crashes >= len(space)
        assert m.n_retries >= len(space)
        assert not m.quarantined
        assert all(f.reason == "crash" for f in m.failures)
        from repro.core.errors import WorkerCrash

        assert isinstance(m.failures[0].as_error(), WorkerCrash)

    def test_persistent_killer_is_quarantined(self, space, clean):
        """One config kills its worker on every attempt: it is recorded
        FAILED and quarantined; every other trial is unaffected."""
        victim = space[1]
        plan = faults.FaultPlan(
            [faults.FaultRule("worker", "worker-death", match=_cfg_token(SPEC, victim))],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, jobs=2, retries=1)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert got[1] == FAILED
        assert [x for i, x in enumerate(got) if i != 1] == [
            x for i, x in enumerate(clean) if i != 1
        ]
        assert len(m.quarantined) == 1
        assert m.telemetry.n_quarantined == 1

    def test_quarantined_config_not_resubmitted(self, space):
        victim = space[0]
        plan = faults.FaultPlan(
            [faults.FaultRule("worker", "worker-death", match=_cfg_token(SPEC, victim))],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, jobs=2, retries=0)
        with faults.injected(plan):
            m.sweep(SPEC, space)
            crashes = m.n_crashes
            # Second sweep: the quarantined config is a memory-cache hit
            # (FAILED), not a fresh submission to a doomed worker.
            m.sweep(SPEC, space)
        assert m.n_crashes == crashes


class TestHang:
    def test_hung_worker_is_killed_by_trial_timeout(self, space, clean):
        victim = space[2]
        plan = faults.FaultPlan(
            [
                faults.FaultRule(
                    "worker", "hang", match=_cfg_token(SPEC, victim), hang_s=60.0
                )
            ],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, jobs=2, trial_timeout_s=0.5, retries=0)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert got[2] == FAILED
        assert [x for i, x in enumerate(got) if i != 2] == [
            x for i, x in enumerate(clean) if i != 2
        ]
        assert m.n_timeouts == 1
        timeout = next(f for f in m.failures if f.reason == "timeout")
        from repro.core.errors import MeasurementTimeout

        err = timeout.as_error()
        assert isinstance(err, MeasurementTimeout)
        assert err.stage == "measure" and err.diagnostic is timeout


class TestCrash:
    def test_serial_crash_recovery(self, space, clean):
        """jobs=1 (in-process) path: a crashing first attempt is retried
        with backoff and the sweep matches the fault-free run."""
        plan = faults.FaultPlan(
            [faults.FaultRule("compile", "crash", match="#a0")], seed=1
        )
        m = Measurer(A100, via_ir=False, jobs=1, retries=2, backoff_s=0.001)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert got == clean
        assert m.n_retries >= len(space)

    def test_serial_persistent_crash_quarantines_not_aborts(self, space):
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=1)
        m = Measurer(A100, via_ir=False, jobs=1, retries=1, backoff_s=0.001)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert all(x == FAILED for x in got)
        assert len(m.quarantined) == len(space)

    def test_transient_failures_never_persist_to_disk(self, space, tmp_path):
        """Crash/timeout FAILED entries are run properties, not config
        properties: they must not poison the disk cache for warm starts."""
        from repro.tuning.cache import MeasurementCache

        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=1)
        m = Measurer(
            A100, via_ir=False, jobs=1, retries=0, backoff_s=0.001,
            cache=MeasurementCache(tmp_path),
        )
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert all(x == FAILED for x in got)
        assert len(m.cache) == 0
        # A fresh measurer on the same cache compiles cleanly.
        m2 = Measurer(A100, via_ir=False, cache=MeasurementCache(tmp_path))
        clean = m2.sweep(SPEC, space)
        assert all(math.isfinite(x) for x in clean)


class TestCorruptLatency:
    def test_corruption_changes_values_but_stays_finite(self, space, clean):
        plan = faults.FaultPlan(
            [faults.FaultRule("simulate", "corrupt-latency", rate=0.5, corrupt_factor=100.0)],
            seed=5,
        )
        m = Measurer(A100, via_ir=False)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert all(math.isfinite(x) for x in got)
        assert got != clean
        assert any(g == pytest.approx(c * 100.0) for g, c in zip(got, clean))

    def test_pool_and_serial_agree_under_faults(self, space):
        """Fault decisions are token-hashed, not scheduling-dependent: the
        same plan over the same work yields identical results at any pool
        width."""
        plan = faults.FaultPlan(
            [faults.FaultRule("worker", "worker-death", rate=0.4, match="#a0")], seed=2
        )
        results = []
        for jobs in (2, 3):
            m = Measurer(A100, via_ir=False, jobs=jobs, retries=2)
            with faults.injected(plan):
                results.append(m.sweep(SPEC, space))
        assert results[0] == results[1]


class TestZombieReap:
    def test_sigterm_ignoring_worker_is_killed_not_leaked(self, space, clean):
        """Regression: a worker wedged where terminate() cannot reach it
        (SIGTERM ignored) used to outlive the sweep as a leaked child. The
        reap path must escalate to SIGKILL and leave no zombies behind."""
        import multiprocessing
        import time as timelib

        victim = space[1]
        plan = faults.FaultPlan(
            [
                faults.FaultRule(
                    "worker", "hang", match=_cfg_token(SPEC, victim),
                    hang_s=60.0, ignore_sigterm=True,
                )
            ],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, jobs=2, trial_timeout_s=0.5, retries=0)
        with faults.injected(plan):
            got = m.sweep(SPEC, space)
        assert got[1] == FAILED
        assert [x for i, x in enumerate(got) if i != 1] == [
            x for i, x in enumerate(clean) if i != 1
        ]
        assert m.n_timeouts == 1
        # The acceptance criterion: no child process survives the sweep.
        deadline = timelib.monotonic() + 5.0
        while timelib.monotonic() < deadline:
            alive = [p for p in multiprocessing.active_children() if p.is_alive()]
            if not alive:
                break
            timelib.sleep(0.05)
        assert not alive, f"sweep leaked worker process(es): {alive}"

    def test_keyboard_interrupt_reaps_sigterm_ignoring_workers(self, space):
        """Ctrl-C during a sweep with a wedged (SIGTERM-ignoring) worker
        must still put every child down via the SIGKILL escalation."""
        import multiprocessing
        import time as timelib

        from repro.tuning import measure as measure_mod

        plan = faults.FaultPlan(
            [faults.FaultRule("worker", "hang", hang_s=60.0, ignore_sigterm=True)],
            seed=1,
        )
        m = Measurer(A100, via_ir=False, jobs=2, trial_timeout_s=30.0, retries=0)

        orig_wait = measure_mod.time.monotonic
        calls = {"n": 0}

        def interrupt_soon():
            # Let the pool spawn its workers, then simulate ONE Ctrl-C from
            # inside the scheduling loop. Raising exactly once matters: the
            # patch leaks into multiprocessing's own join/wait timing, and a
            # repeat raise there would model a double Ctrl-C aborting the
            # cleanup path rather than the single interrupt under test.
            calls["n"] += 1
            if calls["n"] == 41:
                raise KeyboardInterrupt
            return orig_wait()

        with faults.injected(plan):
            import unittest.mock as mock

            with mock.patch.object(measure_mod.time, "monotonic", interrupt_soon):
                with pytest.raises(KeyboardInterrupt):
                    m.sweep(SPEC, space)
        deadline = timelib.monotonic() + 5.0
        while timelib.monotonic() < deadline:
            alive = [p for p in multiprocessing.active_children() if p.is_alive()]
            if not alive:
                break
            timelib.sleep(0.05)
        assert not alive, f"interrupted sweep leaked worker process(es): {alive}"


class TestTimeoutResultRace:
    def test_result_landing_at_the_deadline_is_kept(self, space, clean, monkeypatch):
        """Regression: a result that arrives in the window between the
        deadline check and terminate() used to be discarded as a timeout.
        The drain after terminate() must record it as a real measurement."""
        import os
        import signal
        import time as timelib

        from repro.tuning import measure as measure_mod

        def racy_trial_main(conn, gpu, via_ir, spec, cfg, token):
            # Deliver the result only when the parent's terminate() lands:
            # by then the parent has already decided "timeout", which is
            # exactly the race the drain must win.
            def on_term(signum, frame):
                conn.send(("ok", 42.0, 0.01, {}))
                conn.close()
                os._exit(0)

            signal.signal(signal.SIGTERM, on_term)
            timelib.sleep(60.0)

        monkeypatch.setattr(measure_mod, "_trial_main", racy_trial_main)
        m = Measurer(A100, via_ir=False, jobs=1, trial_timeout_s=0.3, retries=0)
        got = m.measure(SPEC, space[0])
        assert got == 42.0
        assert m.n_timeouts == 0
        assert m.n_compiled == 1
        assert not m.failures

    def test_true_timeout_still_fails_after_drain(self, space, monkeypatch):
        """A worker that really is hung sends nothing; the drain finds an
        empty pipe and the trial is recorded FAILED as before."""
        import time as timelib

        from repro.tuning import measure as measure_mod

        def hung_trial_main(conn, gpu, via_ir, spec, cfg, token):
            timelib.sleep(60.0)

        monkeypatch.setattr(measure_mod, "_trial_main", hung_trial_main)
        m = Measurer(A100, via_ir=False, jobs=1, trial_timeout_s=0.3, retries=0)
        got = m.measure(SPEC, space[0])
        assert got == FAILED
        assert m.n_timeouts == 1


class TestSweepJobsOverride:
    def test_sweep_jobs_does_not_mutate_measurer(self, space):
        m = Measurer(A100, via_ir=False, jobs=1)
        m.sweep(SPEC, space, jobs=2)
        assert m.jobs == 1

"""Tests for the analytical performance model (Table I) and the
bottleneck-analysis baseline."""


import pytest
from hypothesis import given, strategies as st

from repro.gpusim import A100, CompileError
from repro.perfmodel import (
    bottleneck_latency,
    is_load_bound,
    pipeline_latency,
    predict_breakdown,
    predict_latency,
    timing_spec_from_config,
)
from repro.schedule import TileConfig
from repro.tensor import GemmSpec


def ts(m=2048, n=2048, k=2048, ss=3, rs=2, bm=128, bn=128, bk=32, wm=64, wn=64, ck=16):
    spec = GemmSpec("t", 1, m, n, k)
    cfg = TileConfig(bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=ck, smem_stages=ss, reg_stages=rs)
    return timing_spec_from_config(spec, cfg)


class TestPipelineLatencyModel:
    def test_compute_bound_branch(self):
        # t_load fits inside (n_pipe*n_mplx - 1) use steps -> pure compute.
        assert pipeline_latency(t_load=1.0, t_use=1.0, n_loop=10, n_pipe=4, n_mplx=1) == 10.0

    def test_load_bound_branch(self):
        # t_load dominates: full round trip divided by pipeline depth.
        out = pipeline_latency(t_load=10.0, t_use=1.0, n_loop=8, n_pipe=2, n_mplx=1)
        assert out == (10.0 + 1.0) * 8 / 2

    def test_criterion_boundary(self):
        # exactly at the boundary the loop is compute-bound (<=).
        assert not is_load_bound(t_load=3.0, t_use=1.0, n_pipe=4, n_mplx=1)
        assert is_load_bound(t_load=3.01, t_use=1.0, n_pipe=4, n_mplx=1)

    def test_multiplexing_widens_window(self):
        assert is_load_bound(5.0, 1.0, n_pipe=2, n_mplx=1)
        assert not is_load_bound(5.0, 1.0, n_pipe=2, n_mplx=4)

    def test_more_stages_never_hurt(self):
        for n_pipe in range(1, 6):
            a = pipeline_latency(8.0, 1.0, 16, n_pipe, 1)
            b = pipeline_latency(8.0, 1.0, 16, n_pipe + 1, 1)
            assert b <= a

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pipeline_latency(-1.0, 1.0, 4, 2, 1)
        with pytest.raises(ValueError):
            pipeline_latency(1.0, 0.0, 4, 2, 1)
        with pytest.raises(ValueError):
            pipeline_latency(1.0, 1.0, 0, 2, 1)

    @given(
        t_load=st.floats(0.01, 100),
        t_use=st.floats(0.01, 100),
        n_loop=st.integers(1, 64),
        n_pipe=st.integers(1, 8),
        n_mplx=st.integers(1, 8),
    )
    def test_bounded_by_extremes(self, t_load, t_use, n_loop, n_pipe, n_mplx):
        """The pipelined loop is never faster than pure compute and never
        slower than fully serialized load+use."""
        out = pipeline_latency(t_load, t_use, n_loop, n_pipe, n_mplx)
        assert out <= (t_load + t_use) * n_loop + 1e-9
        assert out >= min(t_use * n_loop, (t_load + t_use) * n_loop / n_pipe) - 1e-9


class TestKernelModel:
    def test_breakdown_consistency(self):
        b = predict_breakdown(ts())
        assert b.t_kernel == pytest.approx(b.t_threadblk * b.n_threadblk_batch)
        assert b.t_threadblk == pytest.approx(b.t_init + b.t_main_loop + b.t_epilogue)
        assert b.t_init == pytest.approx(b.t_smem_load + b.t_reg_load)

    def test_stages_help_when_load_bound(self):
        slow = predict_latency(ts(m=512, n=768, k=3072, bm=64, bn=64, wm=32, wn=32, ss=1, rs=1))
        fast = predict_latency(ts(m=512, n=768, k=3072, bm=64, bn=64, wm=32, wn=32, ss=4, rs=2))
        assert fast < slow

    def test_model_is_occupancy_aware(self):
        with pytest.raises(CompileError):
            predict_latency(ts(bm=256, bn=256, bk=64, ss=4))

    def test_longer_reduction_longer_latency(self):
        assert predict_latency(ts(k=4096)) > predict_latency(ts(k=1024))

    def test_util_penalizes_single_warp(self):
        few = predict_breakdown(ts(m=64, n=64, bm=64, bn=64, bk=16, wm=64, wn=64, ss=1, rs=1))
        assert few.util <= 1.0
        assert few.n_threadblk_per_sm >= 1

    def test_batch_count(self):
        b = predict_breakdown(ts())
        grid = (2048 // 128) ** 2
        assert b.n_threadblk_batch == -(-grid // (b.n_threadblk_per_sm * A100.num_sms))


class TestBottleneckModel:
    def test_stage_agnostic(self):
        """The baseline is blind to latency hiding (paper Sec. V-D)."""
        assert bottleneck_latency(ts(ss=1, rs=1)) == bottleneck_latency(ts(ss=4, rs=2))

    def test_no_launchability_check(self):
        # The same config the analytical model rejects is happily scored.
        bottleneck_latency(ts(bm=256, bn=256, bk=64, ss=4))

    def test_compute_roofline_is_floor(self):
        """The compute term of the max() lower-bounds its output, and the
        simulator can never beat the full-utilization compute roofline."""
        from repro.gpusim import simulate_kernel

        t = ts(ss=4, rs=2)
        t_compute = t.total_flops / A100.tc_flops_total
        assert bottleneck_latency(t) >= t_compute
        assert simulate_kernel(t).latency_us >= t_compute

    def test_scales_with_problem(self):
        assert bottleneck_latency(ts(m=2048)) > bottleneck_latency(ts(m=1024))


class TestStaticSpec:
    def test_divisibility_enforced(self):
        spec = GemmSpec("t", 1, 100, 64, 64)
        with pytest.raises(ValueError):
            timing_spec_from_config(spec, TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16))

    def test_footprint_propagates(self):
        spec = GemmSpec("t", 1, 256, 256, 256, a_footprint_ratio=0.3)
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        assert timing_spec_from_config(spec, cfg).a_footprint_ratio == 0.3

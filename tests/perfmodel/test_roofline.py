"""Tests for the roofline analysis module."""

import pytest

from repro.gpusim import A100, H100, simulate_kernel
from repro.ops import Conv2dShape, bmm_spec, conv2d_spec, matmul_spec
from repro.perfmodel import analyze_operator, timing_spec_from_config
from repro.schedule import TileConfig
from repro.workloads import suite_specs


class TestPlacement:
    def test_big_square_gemm_is_compute_bound(self):
        r = analyze_operator(matmul_spec("m", 4096, 4096, 4096))
        assert r.bound == "compute"
        assert r.ceiling_tflops == pytest.approx(A100.tc_flops_total / 1e6)

    def test_skinny_gemm_is_memory_bound(self):
        r = analyze_operator(matmul_spec("m", 64, 64, 8192))
        assert r.bound == "memory"
        assert r.ceiling_tflops < A100.tc_flops_total / 1e6

    def test_ridge_point(self):
        r = analyze_operator(matmul_spec("m", 256, 256, 256))
        assert r.ridge_intensity == pytest.approx(A100.tc_flops_total / A100.dram_bw)

    def test_conv_footprint_raises_intensity(self):
        conv = conv2d_spec("c", Conv2dShape(16, 128, 28, 28, 128, 3, 3, padding=1))
        mm = matmul_spec("m", conv.m, conv.n, conv.k)
        assert (
            analyze_operator(conv).arithmetic_intensity
            > analyze_operator(mm).arithmetic_intensity
        )

    def test_headroom_above_one_away_from_ridge(self):
        deep = analyze_operator(matmul_spec("m", 4096, 4096, 4096))
        assert deep.headroom > 1.0

    def test_h100_moves_ridge_right(self):
        a = analyze_operator(matmul_spec("m", 512, 512, 512), A100)
        h = analyze_operator(matmul_spec("m", 512, 512, 512), H100)
        assert h.ridge_intensity > a.ridge_intensity


class TestConsistencyWithSimulator:
    def test_ideal_latency_is_a_lower_bound(self):
        """No simulated schedule can beat the roofline."""
        spec = matmul_spec("m", 2048, 2048, 2048)
        ideal = analyze_operator(spec).ideal_latency_us
        cfg = TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16,
                         smem_stages=4, reg_stages=2)
        sim = simulate_kernel(timing_spec_from_config(spec, cfg)).latency_us
        assert sim >= ideal

    def test_whole_suite_analyzable(self):
        for spec in suite_specs():
            r = analyze_operator(spec)
            assert r.ideal_latency_us > 0
            assert r.bound in ("compute", "memory")

    def test_bmm_attention_memory_bound(self):
        """The Fig. 10 BMM insight grounded in the roofline: attention
        score GEMMs sit on the memory side of the ridge."""
        r = analyze_operator(bmm_spec("qk", 12, 512, 512, 64))
        assert r.bound == "memory"

"""Batch analytical model vs. the scalar reference, config for config.

The vectorized model (repro.perfmodel.batch) promises *bitwise* agreement
with predict_latency(timing_spec_from_config(...)) — analytical_rank's
ordering, the fig12/fig13 outputs, and the model-guided pruner all lean on
that guarantee, so these tests sweep entire enumerated spaces (including
non-launchable configs) rather than sampling.
"""

import math

import numpy as np
import pytest

from repro.gpusim import A100, V100, CompileError
from repro.perfmodel import (
    derive_timing_arrays,
    predict_latency,
    predict_latency_batch,
    timing_spec_from_config,
)
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import enumerate_space
from repro.tuning.tuners import _analytical_rank_scalar, analytical_rank

# Three shapes with different divisibility/occupancy structure: a big square
# GEMM (plenty of unlaunchable 4-stage tiles), a batched skinny one, and a
# small odd one where most of the space is cut down by divisibility.
SPECS = [
    GemmSpec("batch_big", 1, 1024, 1024, 1024),
    GemmSpec("batch_batched", 8, 128, 128, 256),
    GemmSpec("batch_small", 1, 96, 96, 96),
]


def scalar_latency(spec, cfg, gpu):
    """The pre-batching path: inf where it raises (the FAILED convention)."""
    try:
        return predict_latency(timing_spec_from_config(spec, cfg), gpu)
    except (CompileError, ValueError):
        return math.inf


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_batch_matches_scalar_on_full_space(spec):
    space = enumerate_space(spec, A100)
    batch = predict_latency_batch(spec, space, A100)
    assert batch.shape == (len(space),)
    for i, cfg in enumerate(space):
        expected = scalar_latency(spec, cfg, A100)
        # Same classification (rejected <-> inf) and *equal* latency — the
        # batch path mirrors the scalar arithmetic operation for operation,
        # so no tolerance is needed.
        assert batch[i] == expected, (i, cfg)


def test_batch_matches_scalar_on_other_gpu():
    spec = SPECS[0]
    space = enumerate_space(spec, V100)
    batch = predict_latency_batch(spec, space, V100)
    for i, cfg in enumerate(space):
        assert batch[i] == scalar_latency(spec, cfg, V100), (i, cfg)


def test_space_exercises_rejections():
    """The parity sweep above is only meaningful if it covers rejected
    configs too — make sure the big space actually contains some."""
    spec = SPECS[0]
    space = enumerate_space(spec, A100)
    batch = predict_latency_batch(spec, space, A100)
    assert np.isinf(batch).any(), "no non-launchable configs in the sweep"
    assert np.isfinite(batch).any()


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_analytical_rank_reproduces_scalar_ranking(spec):
    space = enumerate_space(spec, A100)
    assert analytical_rank(spec, space, A100) == _analytical_rank_scalar(spec, space, A100)


def test_custom_model_takes_scalar_path():
    from repro.perfmodel import bottleneck_latency

    spec = SPECS[2]
    space = enumerate_space(spec, A100)
    assert analytical_rank(spec, space, A100, model=bottleneck_latency) == (
        _analytical_rank_scalar(spec, space, A100, model=bottleneck_latency)
    )


def test_empty_space():
    out = predict_latency_batch(SPECS[0], [], A100)
    assert out.shape == (0,) and out.dtype == np.float64


def test_non_divisible_config_marked_not_ok():
    spec = GemmSpec("odd", 1, 64, 64, 64)
    cfgs = [
        TileConfig(48, 48, 16, warp_m=16, warp_n=16, chunk_k=8),  # 64 % 48 != 0
        TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16),
    ]
    ta = derive_timing_arrays(spec, cfgs)
    assert list(ta.ok) == [False, True]
    lat = predict_latency_batch(spec, cfgs, A100)
    assert math.isinf(lat[0]) and math.isfinite(lat[1])

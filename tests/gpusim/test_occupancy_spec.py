"""Tests for occupancy limits and timing-spec extraction."""

import dataclasses

import pytest

from repro.codegen import lower
from repro.gpusim import (
    A100,
    CompileError,
    check_launchable,
    extract_timing_spec,
    tb_per_sm,
)
from repro.perfmodel import timing_spec_from_config
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder
from repro.transform import apply_pipelining


class TestOccupancy:
    def test_thread_limit(self):
        assert tb_per_sm(A100, smem_bytes=0, regs_per_thread=32, threads=1024) == 2

    def test_smem_limit(self):
        occ = tb_per_sm(A100, smem_bytes=40 * 1024, regs_per_thread=32, threads=128)
        assert occ == A100.smem_per_sm // (40 * 1024)

    def test_register_limit(self):
        occ = tb_per_sm(A100, smem_bytes=0, regs_per_thread=128, threads=256)
        assert occ == min(A100.max_tb_per_sm, A100.regs_per_sm // (128 * 256))

    def test_hard_tb_cap(self):
        assert tb_per_sm(A100, smem_bytes=16, regs_per_thread=1, threads=32) == A100.max_tb_per_sm

    def test_register_overflow_is_compile_error(self):
        with pytest.raises(CompileError, match="register overflow"):
            check_launchable(A100, 0, regs_per_thread=300, threads=128)

    def test_smem_overflow_is_compile_error(self):
        with pytest.raises(CompileError, match="shared memory"):
            check_launchable(A100, A100.max_smem_per_tb + 1, 32, 128)

    def test_too_many_threads(self):
        with pytest.raises(CompileError):
            check_launchable(A100, 0, 32, 4096)

    def test_regfile_exceeded_by_one_block(self):
        with pytest.raises(CompileError, match="register file"):
            check_launchable(A100, 0, 255, 1024)


def _compiled(cfg, m=256, n=256, k=512):
    spec = GemmSpec("t", 1, m, n, k)
    a = placeholder("A", (m, k))
    b = placeholder("B", (n, k))
    c = contraction(a, b, spec)
    return apply_pipelining(lower(auto_schedule(c, cfg))), spec


class TestSpecExtraction:
    CFG = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16, smem_stages=3, reg_stages=2)

    def test_matches_static_derivation_pipelined(self):
        kernel, spec = _compiled(self.CFG)
        ext = extract_timing_spec(kernel)
        st = timing_spec_from_config(spec, self.CFG)
        for f in dataclasses.fields(ext):
            if f.name == "name":
                continue
            assert getattr(ext, f.name) == getattr(st, f.name), f.name

    def test_matches_static_derivation_unpipelined(self):
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        kernel, spec = _compiled(cfg)
        ext = extract_timing_spec(kernel)
        st = timing_spec_from_config(spec, cfg)
        for f in dataclasses.fields(ext):
            if f.name == "name":
                continue
            assert getattr(ext, f.name) == getattr(st, f.name), f.name

    def test_grid_and_extents(self):
        kernel, _ = _compiled(self.CFG)
        ts = extract_timing_spec(kernel)
        assert ts.grid == (256 // 64) ** 2
        assert ts.outer_extent == 512 // 32
        assert ts.inner_extent == 32 // 16
        assert ts.smem_stages == 3 and ts.reg_stages == 2

    def test_flops_total(self):
        kernel, spec = _compiled(self.CFG)
        ts = extract_timing_spec(kernel)
        assert ts.total_flops == spec.flops

    def test_smem_bytes_include_stages(self):
        kernel, _ = _compiled(self.CFG)
        ts = extract_timing_spec(kernel)
        assert ts.smem_bytes_per_tb == 3 * (64 + 64) * 32 * 2

    def test_validate_rejects_zero_flops(self):
        kernel, spec = _compiled(self.CFG)
        ts = extract_timing_spec(kernel)
        broken = dataclasses.replace(ts, flops_chunk_tb=0)
        with pytest.raises(ValueError):
            broken.validate()

"""Behavioural tests of the timing engine: the simulator must exhibit the
qualitative phenomena the paper builds on."""

import dataclasses

import pytest

from repro.gpusim import A100, A100_NO_ASYNC, CompileError, simulate_kernel
from repro.gpusim.trace import format_timeline, stall_time
from repro.perfmodel import timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec


def ts_for(m=2048, n=2048, k=2048, bm=128, bn=128, bk=32, wm=64, wn=64, ck=16, ss=1, rs=1,
           **spec_kw):
    spec = GemmSpec("t", 1, m, n, k, **spec_kw)
    cfg = TileConfig(bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=ck, smem_stages=ss, reg_stages=rs)
    return timing_spec_from_config(spec, cfg)


class TestPipeliningEffects:
    def test_pipelining_speeds_up_large_tiles(self):
        base = simulate_kernel(ts_for(ss=1, rs=1)).latency_us
        piped = simulate_kernel(ts_for(ss=4, rs=2)).latency_us
        assert piped < base * 0.85

    def test_multi_stage_beats_double_buffering(self):
        """On latency-bound shapes (small output, long reduction) two
        stages cannot hide the copy round trip, but three can (Fig. 2)."""
        kw = dict(m=512, n=768, k=3072, bm=64, bn=64, bk=32, wm=32, wn=32, ck=16)
        db = simulate_kernel(ts_for(**kw, ss=2, rs=1)).latency_us
        ms = simulate_kernel(ts_for(**kw, ss=3, rs=1)).latency_us
        assert ms < db * 0.95

    def test_multi_level_helps(self):
        single = simulate_kernel(ts_for(ss=4, rs=1)).latency_us
        multi = simulate_kernel(ts_for(ss=4, rs=2)).latency_us
        assert multi < single

    def test_small_tiles_gain_little_from_pipelining(self):
        """Abundant inter-tile parallelism already hides latency (Fig. 1b)."""
        small_base = simulate_kernel(ts_for(bm=32, bn=32, wm=32, wn=32, ss=1)).latency_us
        small_pipe = simulate_kernel(ts_for(bm=32, bn=32, wm=32, wn=32, ss=4)).latency_us
        large_base = simulate_kernel(ts_for(bm=256, bn=128, wm=64, wn=64, ss=1)).latency_us
        large_pipe = simulate_kernel(ts_for(bm=256, bn=128, wm=64, wn=64, ss=4, rs=2)).latency_us
        small_gain = small_base / small_pipe
        large_gain = large_base / large_pipe
        assert large_gain > small_gain

    def test_long_reduction_gains_more(self):
        """Short reduction axes cannot amortize the pipeline fill (Sec. V-A)."""
        short_base = simulate_kernel(ts_for(m=512, n=512, k=64, bk=32)).latency_us
        short_pipe = simulate_kernel(ts_for(m=512, n=512, k=64, bk=32, ss=3, rs=2)).latency_us
        long_base = simulate_kernel(ts_for(m=512, n=512, k=4096, bk=32)).latency_us
        long_pipe = simulate_kernel(ts_for(m=512, n=512, k=4096, bk=32, ss=3, rs=2)).latency_us
        assert long_base / long_pipe > short_base / short_pipe

    def test_stall_time_shrinks_with_stages(self):
        t1 = simulate_kernel(ts_for(bm=256, bn=128, wm=64, wn=64, ss=1), collect_trace=True)
        t4 = simulate_kernel(ts_for(bm=256, bn=128, wm=64, wn=64, ss=4, rs=2), collect_trace=True)
        s1 = sum(stall_time(t1.trace).values())
        s4 = sum(stall_time(t4.trace).values())
        assert s4 < s1


class TestMechanics:
    def test_wave_count(self):
        res = simulate_kernel(ts_for())
        grid = (2048 // 128) ** 2  # 256
        assert res.waves == -(-grid // (res.tb_per_sm * A100.num_sms))

    def test_latency_scales_with_problem(self):
        small = simulate_kernel(ts_for(m=1024, n=1024)).latency_us
        big = simulate_kernel(ts_for(m=2048, n=2048)).latency_us
        assert big > 2 * small

    def test_tflops_below_peak(self):
        res = simulate_kernel(ts_for(ss=4, rs=2))
        assert 0 < res.tflops < 312

    def test_dram_fraction_below_one_with_reuse(self):
        res = simulate_kernel(ts_for())
        assert res.dram_fraction < 1.0

    def test_footprint_ratio_reduces_dram_fraction(self):
        dense = simulate_kernel(ts_for())
        conv = simulate_kernel(ts_for(a_footprint_ratio=0.2))
        assert conv.dram_fraction < dense.dram_fraction

    def test_extrapolation_close_to_exact(self):
        ts = ts_for(k=8192, ss=3, rs=2)
        exact = simulate_kernel(ts, max_outer_iters=None).latency_us
        extrap = simulate_kernel(ts, max_outer_iters=48).latency_us
        assert abs(exact - extrap) / exact < 0.05

    def test_determinism(self):
        a = simulate_kernel(ts_for(ss=3, rs=2)).latency_us
        b = simulate_kernel(ts_for(ss=3, rs=2)).latency_us
        assert a == b

    def test_bank_conflicts_hurt_without_swizzle(self):
        spec = GemmSpec("t", 1, 2048, 2048, 2048)
        sw = TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16, smem_stages=3,
                        reg_stages=1, swizzle=True)
        nosw = dataclasses.replace(sw, swizzle=False)
        t_sw = simulate_kernel(timing_spec_from_config(spec, sw)).latency_us
        t_no = simulate_kernel(timing_spec_from_config(spec, nosw)).latency_us
        assert t_no > t_sw

    def test_async_kernel_needs_ampere(self):
        with pytest.raises(CompileError, match="cp.async"):
            simulate_kernel(ts_for(ss=3), gpu=A100_NO_ASYNC)

    def test_sync_kernel_runs_on_pre_ampere(self):
        res = simulate_kernel(ts_for(ss=1), gpu=A100_NO_ASYNC)
        assert res.latency_us > 0

    def test_unlaunchable_raises(self):
        ts = ts_for(bm=256, bn=256, bk=64, wm=64, wn=64, ss=4)
        with pytest.raises(CompileError):
            simulate_kernel(ts)


class TestTrace:
    def test_timeline_renders(self):
        res = simulate_kernel(ts_for(ss=3, rs=2), collect_trace=True)
        text = format_timeline(res.trace)
        assert "timeline" in text
        assert "#" in text

    def test_empty_trace(self):
        assert "empty" in format_timeline([])

"""Behavioural tests across GPU generations (V100 / A100 / H100)."""

import pytest

from repro.gpusim import A100, CompileError, H100, V100, simulate_kernel, tb_per_sm
from repro.perfmodel import predict_latency, timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec

SPEC = GemmSpec("gen", 1, 1024, 1024, 2048)


def ts(ss=1, rs=1):
    cfg = TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16, smem_stages=ss, reg_stages=rs)
    return timing_spec_from_config(SPEC, cfg)


class TestVolta:
    def test_no_async_pipelined_kernel_fails(self):
        with pytest.raises(CompileError, match="cp.async"):
            simulate_kernel(ts(ss=3, rs=2), gpu=V100)

    def test_unpipelined_kernel_runs_slower_than_a100(self):
        v = simulate_kernel(ts(), gpu=V100).latency_us
        a = simulate_kernel(ts(), gpu=A100).latency_us
        assert v > a

    def test_register_pipelining_allowed(self):
        # Register-level software pipelining predates cp.async.
        res = simulate_kernel(ts(ss=1, rs=2), gpu=V100)
        assert res.latency_us > 0

    def test_smaller_smem_budget(self):
        big = TileConfig(128, 128, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=4)
        r = big.resource_usage()
        with pytest.raises(CompileError):
            tb_per_sm(V100, r.smem_bytes, r.regs_per_thread, r.threads)


class TestHopper:
    def test_faster_than_a100(self):
        h = simulate_kernel(ts(ss=4, rs=2), gpu=H100).latency_us
        a = simulate_kernel(ts(ss=4, rs=2), gpu=A100).latency_us
        assert h < a

    def test_wider_compute_memory_gap(self):
        assert H100.tc_flops_total / H100.dram_bw > A100.tc_flops_total / A100.dram_bw

    def test_analytical_model_works_on_all_generations(self):
        for gpu in (A100, H100):
            assert predict_latency(ts(ss=3, rs=2), gpu) > 0
        assert predict_latency(ts(), V100) > 0

    def test_pipelining_gain_present_on_hopper(self):
        base = simulate_kernel(ts(), gpu=H100).latency_us
        piped = simulate_kernel(ts(ss=4, rs=2), gpu=H100).latency_us
        assert piped < base

"""Unit tests for the wave working-set (DRAM fraction) model."""

import dataclasses

import pytest

from repro.gpusim import A100
from repro.gpusim.engine import _dram_fraction
from repro.perfmodel import timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec


def ts(m=2048, n=2048, k=2048, batch=1, **spec_kw):
    spec = GemmSpec("t", batch, m, n, k, **spec_kw)
    cfg = TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16)
    return timing_spec_from_config(spec, cfg)


class TestDramFraction:
    def test_bounded(self):
        f = _dram_fraction(ts(), A100, wave_tbs=216)
        assert 0.0 < f <= 1.0

    def test_single_tb_all_unique(self):
        # One threadblock shares nothing: every byte is unique.
        assert _dram_fraction(ts(), A100, wave_tbs=1) == pytest.approx(1.0)

    def test_reuse_grows_with_wave(self):
        small = _dram_fraction(ts(), A100, wave_tbs=16)
        large = _dram_fraction(ts(), A100, wave_tbs=216)
        assert large < small

    def test_footprint_ratio_scales_unique_bytes(self):
        dense = _dram_fraction(ts(), A100, wave_tbs=216)
        conv = _dram_fraction(ts(a_footprint_ratio=0.1), A100, wave_tbs=216)
        assert conv < dense

    def test_l2_overflow_forces_full_dram(self):
        spec = dataclasses.replace(A100, l2_size=1024)
        assert _dram_fraction(ts(), spec, wave_tbs=216) == 1.0

    def test_wave_capped_by_grid(self):
        t = ts(m=256, n=256)  # grid = 4
        assert _dram_fraction(t, A100, wave_tbs=10_000) == _dram_fraction(t, A100, wave_tbs=4)

    def test_no_load_traffic_degenerates_to_one(self):
        t = dataclasses.replace(ts(), a_chunk_bytes=0, b_chunk_bytes=0)
        assert _dram_fraction(t, A100, wave_tbs=216) == 1.0

    def test_batched_b_not_shared_across_batches(self):
        """Per-batch operands reduce cross-tile reuse of B."""
        flat = _dram_fraction(ts(m=512, n=512), A100, wave_tbs=64)
        batched = _dram_fraction(ts(m=512, n=512, batch=16), A100, wave_tbs=64)
        assert batched >= flat

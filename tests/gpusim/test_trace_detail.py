"""Tests for the timeline trace utilities."""


from repro.gpusim import simulate_kernel
from repro.gpusim.trace import format_timeline, stall_time
from repro.perfmodel import timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec


def traced(ss=3, rs=2):
    spec = GemmSpec("t", 1, 512, 512, 2048)
    cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16, smem_stages=ss, reg_stages=rs)
    return simulate_kernel(timing_spec_from_config(spec, cfg), collect_trace=True)


class TestStallTime:
    def test_per_tb_accounting(self):
        res = traced(ss=1, rs=1)
        stalls = stall_time(res.trace)
        assert stalls and all(v >= 0 for v in stalls.values())

    def test_only_waits_counted(self):
        res = traced()
        total_events = len(res.trace)
        stalls = stall_time(res.trace)
        # uses and epilogues exist but contribute nothing
        assert total_events > len(stalls)

    def test_empty(self):
        assert stall_time([]) == {}


class TestFormatTimeline:
    def test_rows_per_tb_and_kind(self):
        res = traced()
        text = format_timeline(res.trace)
        assert "tb0 use" in text
        assert "tb0 smem_wait" in text
        assert "tb0 epilogue" in text

    def test_glyphs(self):
        res = traced(ss=1)
        text = format_timeline(res.trace)
        assert "#" in text  # compute
        assert "." in text  # stalls are visible without pipelining
        assert "=" in text  # epilogue

    def test_width_respected(self):
        res = traced()
        for line in format_timeline(res.trace, width=40).splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

    def test_pipelined_has_fewer_stall_glyphs(self):
        base = format_timeline(traced(ss=1, rs=1).trace, width=60)
        piped = format_timeline(traced(ss=4, rs=2).trace, width=60)
        assert piped.count(".") < base.count(".")

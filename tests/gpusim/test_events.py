"""Tests for the discrete-event scheduler core."""

import pytest

from repro.gpusim.events import FifoServer, Simulator


class TestFifoServer:
    def test_idle_server_serves_immediately(self):
        s = FifoServer("x")
        assert s.request(now=1.0, service=2.0) == 3.0

    def test_queueing(self):
        s = FifoServer("x")
        s.request(0.0, 5.0)
        assert s.request(1.0, 2.0) == 7.0  # waits for first request

    def test_latency_does_not_occupy_server(self):
        s = FifoServer("x")
        t1 = s.request(0.0, 1.0, latency=10.0)
        t2 = s.request(0.0, 1.0, latency=10.0)
        assert t1 == 11.0
        assert t2 == 12.0  # pipelined: only service serializes

    def test_busy_time_accumulates(self):
        s = FifoServer("x")
        s.request(0.0, 1.5)
        s.request(0.0, 2.5)
        assert s.busy_time == 4.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            FifoServer("x").request(0.0, -1.0)


class TestSimulator:
    def test_single_process_delay(self):
        sim = Simulator()

        def proc():
            yield ("delay", 5.0)
            yield ("delay", 2.0)

        sim.add_process(proc())
        assert sim.run() == 7.0

    def test_wait_until_past_is_now(self):
        sim = Simulator()
        times = []

        def proc():
            yield ("delay", 4.0)
            yield ("wait_until", 1.0)  # already past
            times.append(sim.now)

        sim.add_process(proc())
        sim.run()
        assert times == [4.0]

    def test_two_processes_interleave(self):
        sim = Simulator()
        order = []

        def proc(name, dt):
            yield ("delay", dt)
            order.append((name, sim.now))

        sim.add_process(proc("slow", 3.0))
        sim.add_process(proc("fast", 1.0))
        sim.run()
        assert order == [("fast", 1.0), ("slow", 3.0)]

    def test_server_contention_via_time_order(self):
        """The later-starting process must queue behind the earlier one."""
        sim = Simulator()
        server = FifoServer("s")
        done = {}

        def proc(name, start_delay):
            yield ("delay", start_delay)
            t = server.request(sim.now, 10.0)
            yield ("wait_until", t)
            done[name] = sim.now

        sim.add_process(proc("a", 0.0))
        sim.add_process(proc("b", 1.0))
        sim.run()
        assert done == {"a": 10.0, "b": 20.0}

    def test_unknown_command_rejected(self):
        sim = Simulator()

        def proc():
            yield ("sleep", 1.0)

        sim.add_process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_event_budget(self):
        sim = Simulator()

        def forever():
            while True:
                yield ("delay", 1.0)

        sim.add_process(forever())
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=10)

    def test_start_time_offsets(self):
        sim = Simulator()
        seen = []

        def proc():
            seen.append(sim.now)
            yield ("delay", 0.0)

        sim.add_process(proc(), start_time=2.5)
        sim.run()
        assert seen == [2.5]

"""Tests for the ALCOP compiler driver and the baseline systems."""

import numpy as np
import pytest

from repro.baselines import LIBRARY_CATALOG, LibraryKernels, XlaLikeCompiler, ablation_compilers
from repro.core import AlcopCompiler
from repro.gpusim.occupancy import CompileError
from repro.ops import bmm_spec, matmul_spec, reference_matmul
from repro.tuning import Measurer, SpaceOptions

OPTS = SpaceOptions(max_size=250)
MEAS = Measurer(via_ir=False)


def _alcop(**kw):
    return AlcopCompiler(measurer=MEAS, space_options=OPTS, **kw)


class TestAlcopCompiler:
    SPEC = matmul_spec("cc_mm", 512, 256, 1024)

    def test_compile_returns_timed_kernel(self):
        ck = _alcop().compile(self.SPEC)
        assert ck.latency_us > 0
        assert ck.tflops > 0
        assert ck.kernel.attrs["config"] == ck.config

    def test_compile_cached(self):
        comp = _alcop()
        assert comp.compile(self.SPEC) is comp.compile(self.SPEC)

    def test_alcop_variant_uses_pipelining(self):
        ck = _alcop().compile(self.SPEC)
        assert ck.config.smem_stages >= 2  # search should pick a pipelined schedule

    def test_tvm_variant_never_pipelines(self):
        ck = _alcop(variant="tvm").compile(self.SPEC)
        assert ck.config.smem_stages == 1 and ck.config.reg_stages == 1
        assert ck.kernel.attrs["pipeline_groups"] == []

    def test_variant_ordering(self):
        """More pipelining freedom can only improve the searched optimum."""
        lat = {
            name: comp.compile(self.SPEC).latency_us
            for name, comp in ablation_compilers(measurer=MEAS, space_options=OPTS).items()
        }
        assert lat["ALCOP"] <= lat["ALCOP w/o ML"] <= lat["ALCOP w/o ML&MS"] <= lat["TVM"]
        assert lat["TVM DB"] <= lat["TVM"]

    def test_functional_run(self):
        spec = matmul_spec("small", 32, 32, 64)
        comp = AlcopCompiler(measurer=MEAS)
        ck = comp.compile(spec)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 64)).astype(np.float16)
        b = rng.standard_normal((32, 64)).astype(np.float16)
        out = ck.run(a, b)
        np.testing.assert_allclose(
            out.astype(np.float32),
            reference_matmul(a, b).astype(np.float32),
            rtol=2e-2,
            atol=0.5,
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            AlcopCompiler(variant="fastest")

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError):
            AlcopCompiler(search="bayesian")

    def test_trial_based_search(self):
        comp = _alcop(search="model-assisted-xgb", n_trials=20)
        ck = comp.compile(self.SPEC)
        exhaustive = _alcop().compile(self.SPEC)
        assert ck.latency_us <= exhaustive.latency_us * 1.5


class TestLibrary:
    def test_catalog_is_fully_pipelined(self):
        assert all(c.smem_stages >= 3 and c.reg_stages == 2 for c in LIBRARY_CATALOG)

    def test_dispatch_requires_divisibility(self):
        lib = LibraryKernels()
        cfg = lib.dispatch(matmul_spec("m", 1024, 1024, 1024))
        assert 1024 % cfg.block_m == 0 and 1024 % cfg.block_n == 0

    def test_dispatch_failure(self):
        lib = LibraryKernels()
        with pytest.raises(CompileError):
            lib.dispatch(matmul_spec("odd", 48, 48, 48))

    def test_latency_cached_and_positive(self):
        lib = LibraryKernels()
        spec = matmul_spec("m", 1024, 1024, 1024)
        a = lib.gemm_latency(spec)
        assert a > 0 and lib.gemm_latency(spec) == a

    def test_library_competitive_with_alcop(self):
        """Libraries are within ~2x of searched ALCOP either way (Fig. 11)."""
        spec = matmul_spec("m2048", 2048, 2048, 2048)
        lib = LibraryKernels().gemm_latency(spec)
        alcop = _alcop().compile(spec).latency_us
        assert 0.5 < alcop / lib < 2.0


class TestXla:
    def test_picks_unpipelined_tile(self):
        xla = XlaLikeCompiler()
        cfg = xla.pick_tile(matmul_spec("m", 512, 512, 512))
        assert cfg.smem_stages == 1 and cfg.reg_stages == 1

    def test_conv_delegation_overhead(self):
        from repro.ops import Conv2dShape, conv2d_spec

        xla = XlaLikeCompiler()
        lib = LibraryKernels()
        conv = conv2d_spec("c", Conv2dShape(16, 128, 28, 28, 128, 3, 3, padding=1))
        # Delegated to cuDNN, plus per-call layout/selection overhead.
        assert xla.gemm_latency(conv) > lib.gemm_latency(conv)

    def test_matmul_delegation_overhead(self):
        spec = matmul_spec("m", 512, 768, 3072)
        assert XlaLikeCompiler().gemm_latency(spec) > LibraryKernels().gemm_latency(spec)

    def test_bmm_own_path_slower_than_alcop(self):
        spec = bmm_spec("b", 12, 512, 64, 512)
        assert XlaLikeCompiler().gemm_latency(spec) > _alcop().compile(spec).latency_us * 0.95

"""Tests for the split-K GEMM extension."""

import numpy as np
import pytest

from repro.core import SplitKCompiled, SplitKCompiler, build_reduce_kernel, reduce_latency_us
from repro.interp import run_kernel
from repro.ir import validate_kernel
from repro.ops import bmm_spec, matmul_spec
from repro.tuning import Measurer, SpaceOptions

MEAS = Measurer(via_ir=False)
OPTS = SpaceOptions(max_size=250)


def make_compiler(**kw):
    return SplitKCompiler(measurer=MEAS, space_options=OPTS, **kw)


class TestReduceKernel:
    def test_validates(self):
        validate_kernel(build_reduce_kernel(128, 64, 4))

    def test_semantics(self):
        k = build_reduce_kernel(128, 64, 4)
        rng = np.random.default_rng(0)
        w = rng.standard_normal((4, 128, 64)).astype(np.float16)
        out = run_kernel(k, {"W": w}, mode="eager")["C"]
        ref = w.astype(np.float32).sum(axis=0).astype(np.float16)
        np.testing.assert_allclose(out.astype(np.float32), ref.astype(np.float32), atol=0.1)

    def test_non_tile_aligned_shapes(self):
        k = build_reduce_kernel(100, 50, 2)
        w = np.ones((2, 100, 50), dtype=np.float16)
        out = run_kernel(k, {"W": w}, mode="eager")["C"]
        np.testing.assert_allclose(out.astype(np.float32), 2.0)

    def test_latency_scales_with_splits(self):
        assert reduce_latency_us(1024, 64, 8) > reduce_latency_us(1024, 64, 2)


class TestCandidateSplits:
    def test_one_always_included(self):
        comp = make_compiler()
        assert 1 in comp.candidate_splits(matmul_spec("m", 64, 64, 64))

    def test_indivisible_k_excluded(self):
        comp = make_compiler(split_candidates=(1, 3))
        assert comp.candidate_splits(matmul_spec("m", 64, 64, 256)) == [1]

    def test_min_k_per_split_enforced(self):
        comp = make_compiler(min_k_per_split=128)
        splits = comp.candidate_splits(matmul_spec("m", 64, 64, 256))
        assert splits == [1, 2]

    def test_batched_problems_not_split(self):
        comp = make_compiler()
        assert comp.candidate_splits(bmm_spec("b", 4, 64, 64, 4096)) == [1]


class TestCompilation:
    def test_deep_reduction_picks_split(self):
        comp = make_compiler(split_candidates=(1, 2, 4, 8))
        ck = comp.compile(matmul_spec("deep", 64, 64, 8192))
        assert ck.split_k > 1

    def test_split_beats_plain_on_deep_shape(self):
        from repro.core import AlcopCompiler

        spec = matmul_spec("deep2", 64, 64, 8192)
        plain = AlcopCompiler(measurer=MEAS, space_options=OPTS).compile(spec)
        sk = make_compiler(split_candidates=(1, 2, 4, 8)).compile(spec)
        assert sk.latency_us < plain.latency_us

    def test_parallel_rich_shape_keeps_split_one(self):
        comp = make_compiler()
        ck = comp.compile(matmul_spec("wide", 2048, 2048, 256))
        assert ck.split_k == 1

    def test_cached(self):
        comp = make_compiler()
        spec = matmul_spec("c", 256, 256, 512)
        assert comp.compile(spec) is comp.compile(spec)

    def test_backend_hook(self):
        comp = make_compiler()
        assert comp.gemm_latency(matmul_spec("h", 256, 256, 512)) > 0


class TestFunctional:
    @pytest.mark.parametrize("split", [2, 4])
    def test_split_run_matches_reference(self, split):
        spec = matmul_spec("f", 32, 32, 512)
        comp = make_compiler()
        partial = comp._inner.compile(comp._partial_spec(spec, split))
        ck = SplitKCompiled(
            spec, split, partial,
            build_reduce_kernel(32, 32, split),
            reduce_latency_us(32, 32, split),
        )
        rng = np.random.default_rng(split)
        a = rng.standard_normal((32, 512)).astype(np.float16)
        b = rng.standard_normal((32, 512)).astype(np.float16)
        out = ck.run(a, b).astype(np.float32)
        ref = a.astype(np.float32) @ b.astype(np.float32).T
        np.testing.assert_allclose(out, ref, rtol=5e-2, atol=1.0)

    def test_split_one_run_uses_plain_path(self):
        spec = matmul_spec("f1", 32, 32, 128)
        ck = make_compiler(split_candidates=(1,)).compile(spec)
        assert ck.split_k == 1
        rng = np.random.default_rng(9)
        a = rng.standard_normal((32, 128)).astype(np.float16)
        b = rng.standard_normal((32, 128)).astype(np.float16)
        out = ck.run(a, b).astype(np.float32)
        ref = a.astype(np.float32) @ b.astype(np.float32).T
        np.testing.assert_allclose(out, ref, rtol=5e-2, atol=0.5)

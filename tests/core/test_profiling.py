"""Per-stage profiling primitives and their integration with the measurer."""

import time

from repro.core import profiling
from repro.core.profiling import STAGE_ORDER, StageTimes, collect, stage


class TestStageTimes:
    def test_add_and_total(self):
        t = StageTimes()
        t.add("lower", 0.25)
        t.add("lower", 0.25)
        t.add("simulate", 0.5)
        assert t["lower"] == 0.5
        assert t.total == 1.0

    def test_merge_folds_worker_breakdowns(self):
        t = StageTimes()
        t.add("schedule", 1.0)
        t.merge({"schedule": 0.5, "simulate": 2.0})
        assert t["schedule"] == 1.5 and t["simulate"] == 2.0

    def test_ordered_follows_canonical_order(self):
        t = StageTimes()
        t.add("simulate", 1.0)
        t.add("schedule", 1.0)
        t.add("zzz-custom", 1.0)
        names = [n for n, _ in t.ordered()]
        assert names == ["schedule", "simulate", "zzz-custom"]
        assert set(STAGE_ORDER).issuperset(names[:-1])

    def test_summary(self):
        t = StageTimes()
        assert t.summary() == "no stages recorded"
        t.add("lower", 3.0)
        t.add("simulate", 1.0)
        s = t.summary()
        assert "lower" in s and "75.0%" in s and "total" in s


class TestCollect:
    def test_stage_is_noop_without_collector(self):
        with stage("lower"):
            pass
        assert not profiling._active()

    def test_collect_routes_stage_durations(self):
        t = StageTimes()
        with collect(t):
            with stage("lower"):
                time.sleep(0.01)
        assert t["lower"] >= 0.005
        assert list(t) == ["lower"]

    def test_nested_collectors_both_see_stages(self):
        outer, inner = StageTimes(), StageTimes()
        with collect(outer):
            with stage("schedule"):
                pass
            with collect(inner):
                with stage("simulate"):
                    pass
        assert set(outer) == {"schedule", "simulate"}
        assert set(inner) == {"simulate"}

    def test_collector_removed_on_exception(self):
        t = StageTimes()
        try:
            with collect(t):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not profiling._active()


class TestMeasurerIntegration:
    def test_sweep_records_stage_breakdown(self):
        from repro.gpusim import A100
        from repro.tensor import GemmSpec
        from repro.tuning import Measurer, SpaceOptions, enumerate_space

        spec = GemmSpec("prof_mm", 1, 128, 128, 128)
        space = enumerate_space(spec, A100, options=SpaceOptions(max_size=6))
        measurer = Measurer(A100, via_ir=True)
        measurer.sweep(spec, space)
        recorded = dict(measurer.stage_times)
        for name in ("schedule", "lower", "transform", "spec-extract", "simulate"):
            assert recorded.get(name, 0.0) > 0.0, name
        telemetry = measurer.telemetry
        assert dict(telemetry.stage_time_s) == recorded
        prof = telemetry.profile_summary()
        assert "simulate" in prof and "total" in prof

    def test_static_path_records_extract_and_simulate_only(self):
        from repro.gpusim import A100
        from repro.tensor import GemmSpec
        from repro.tuning import Measurer, SpaceOptions, enumerate_space

        spec = GemmSpec("prof_static", 1, 128, 128, 128)
        space = enumerate_space(spec, A100, options=SpaceOptions(max_size=4))
        measurer = Measurer(A100, via_ir=False)
        measurer.sweep(spec, space)
        assert set(measurer.stage_times) <= {"spec-extract", "simulate"}
        assert measurer.stage_times.get("simulate", 0.0) > 0.0

"""The unified error taxonomy: stages, structure, and back-compat aliases."""

import pytest

from repro.core.errors import (
    CompileError,
    DegradationEvent,
    FaultInjected,
    MeasurementTimeout,
    ProtocolError,
    RegistryError,
    ReproError,
    ScheduleError,
    ServeError,
    SimulationError,
    SyncVerificationError,
    TransformError,
    WorkerCrash,
)

STAGES = {
    ScheduleError: "schedule",
    TransformError: "transform",
    SyncVerificationError: "sync-verify",
    SimulationError: "simulate",
    CompileError: "compile",
    MeasurementTimeout: "measure",
    WorkerCrash: "measure",
    FaultInjected: "fault",
    ServeError: "serve",
    ProtocolError: "serve",
    RegistryError: "registry",
}


class TestTaxonomy:
    @pytest.mark.parametrize("cls,stage", sorted(STAGES.items(), key=lambda kv: kv[0].__name__))
    def test_stage_and_subclassing(self, cls, stage):
        err = cls("boom")
        assert isinstance(err, ReproError)
        assert err.stage == stage
        assert err.message == "boom"

    def test_diagnostic_is_preserved(self):
        err = CompileError("nope", diagnostic={"spec": "x"})
        assert err.diagnostic == {"spec": "x"}

    def test_describe_mentions_stage(self):
        assert "transform" in TransformError("bad loop").describe()

    def test_fault_injected_carries_site_and_kind(self):
        err = FaultInjected("injected", site="worker", kind="crash")
        assert err.site == "worker" and err.kind == "crash"

    def test_catching_reproerror_catches_everything(self):
        for cls in STAGES:
            with pytest.raises(ReproError):
                raise cls("x")


class TestBackCompat:
    def test_gpusim_compile_error_is_the_taxonomy_class(self):
        from repro.gpusim.occupancy import CompileError as OccCompileError

        assert OccCompileError is CompileError

    def test_schedule_errors_fold_in(self):
        from repro.schedule.errors import OrderingError, PipelineRejected

        assert issubclass(OrderingError, ScheduleError)
        assert issubclass(PipelineRejected, ScheduleError)
        err = PipelineRejected("rule7", "too deep")
        assert "rule7" in str(err)

    def test_transform_error_folds_in(self):
        from repro.transform.analysis import TransformError as TError

        assert TError is TransformError

    def test_synccheck_error_folds_in(self):
        from repro.ir.syncheck import SyncCheckError

        assert issubclass(SyncCheckError, SyncVerificationError)

    def test_serve_errors_are_serve_errors(self):
        assert issubclass(ProtocolError, ServeError)
        assert issubclass(RegistryError, ServeError)

    def test_core_package_reexports(self):
        import repro.core as core

        assert core.CompileError is CompileError
        assert core.ReproError is ReproError
        assert core.ServeError is ServeError
        assert core.RegistryError is RegistryError
        # Lazy heavy exports still resolve.
        assert core.VARIANTS[0] == "alcop"
        assert "AlcopCompiler" in dir(core)


class TestDegradationEvent:
    def test_str_shows_transition(self):
        ev = DegradationEvent(
            op="MM", from_variant="alcop", to_variant="tvm-db",
            stage="transform", reason="rejected",
        )
        s = str(ev)
        assert "MM" in s and "alcop" in s and "tvm-db" in s

    def test_frozen(self):
        ev = DegradationEvent("a", "b", "c", "d", "e")
        with pytest.raises(Exception):
            ev.op = "x"

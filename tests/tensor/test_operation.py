"""Tests for the tensor dataflow layer."""

import numpy as np
import pytest

from repro.ir.buffer import Scope
from repro.tensor import (
    ELEMENTWISE_FNS,
    CacheReadOp,
    ContractionOp,
    ElementwiseOp,
    GemmSpec,
    PlaceholderOp,
    Tensor,
    contraction,
    elementwise,
    placeholder,
)


class TestGemmSpec:
    def test_flops(self):
        s = GemmSpec("mm", batch=1, m=128, n=64, k=32)
        assert s.flops == 2 * 128 * 64 * 32

    def test_bytes(self):
        s = GemmSpec("mm", batch=2, m=8, n=4, k=16, dtype="float16")
        assert s.a_bytes == 2 * 8 * 16 * 2
        assert s.b_bytes == 2 * 4 * 16 * 2
        assert s.c_bytes == 2 * 8 * 4 * 2

    def test_arithmetic_intensity_positive(self):
        s = GemmSpec("mm", batch=1, m=256, n=256, k=256)
        assert s.arithmetic_intensity > 0

    def test_footprint_ratio_lowers_traffic(self):
        dense = GemmSpec("mm", 1, 256, 256, 256)
        conv = GemmSpec("cv", 1, 256, 256, 256, a_footprint_ratio=0.25)
        assert conv.arithmetic_intensity > dense.arithmetic_intensity

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmSpec("mm", 1, 0, 4, 4)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            GemmSpec("mm", 1, 4, 4, 4, a_footprint_ratio=0.0)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            GemmSpec("mm", 1, 4, 4, 4, dtype="bfloat16")


class TestGraph:
    def test_placeholder(self):
        t = placeholder("A", (4, 4))
        assert isinstance(t.op, PlaceholderOp)
        assert t.producer is None
        assert t.scope is Scope.GLOBAL

    def test_elementwise_registry(self):
        t = placeholder("A", (4, 4))
        e = elementwise(t, "relu")
        assert isinstance(e.op, ElementwiseOp)
        assert e.producer is t
        x = np.array([-1.0, 2.0])
        np.testing.assert_allclose(e.op.fn(x), [0.0, 2.0])

    def test_elementwise_unknown_fn(self):
        t = placeholder("A", (4, 4))
        with pytest.raises(ValueError):
            elementwise(t, "not_a_fn")

    def test_cache_read_pure_copy(self):
        t = placeholder("A", (4, 4))
        buf = Tensor("A_sh", t.shape, CacheReadOp(t), scope=Scope.SHARED)
        assert buf.op.is_pure_copy
        assert buf.producer is t

    def test_cache_read_with_fused_fn_not_pure(self):
        t = placeholder("A", (4, 4))
        buf = Tensor("A_sh", t.shape, CacheReadOp(t, fused_fn_name="relu"), scope=Scope.SHARED)
        assert not buf.op.is_pure_copy

    def test_contraction_shape_batched(self):
        spec = GemmSpec("bmm", batch=3, m=8, n=4, k=16)
        a = placeholder("A", (3, 8, 16))
        b = placeholder("B", (3, 4, 16))
        c = contraction(a, b, spec)
        assert c.shape == (3, 8, 4)
        assert isinstance(c.op, ContractionOp)

    def test_contraction_shape_unbatched(self):
        spec = GemmSpec("mm", batch=1, m=8, n=4, k=16)
        a = placeholder("A", (8, 16))
        b = placeholder("B", (4, 16))
        c = contraction(a, b, spec)
        assert c.shape == (8, 4)

    def test_all_elementwise_fns_preserve_shape(self):
        x = np.linspace(-2, 2, 12).reshape(3, 4).astype(np.float32)
        for name, fn in ELEMENTWISE_FNS.items():
            assert fn(x).shape == x.shape, name

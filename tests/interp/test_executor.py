"""Direct tests of the IR interpreters (eager and pipeline semantics)."""

import numpy as np
import pytest

from repro.interp import InterpreterError, PipelineHazardError, run_kernel
from repro.ir import Buffer, ComputeStmt, IRBuilder, Kernel, MemCopy, Scope, SyncKind
from repro.transform import apply_pipelining


def copy_kernel(n_tiles=4, tile=8, is_async=False, stages=None):
    """O[t] = A[t] streamed through a shared buffer."""
    A = Buffer("A", (n_tiles * tile,))
    out_b = Buffer("O", (n_tiles * tile,))
    sh = Buffer("sh", (tile,), scope=Scope.SHARED)
    b = IRBuilder()
    attrs = {"pipeline_stages": stages} if stages else None
    with b.allocate(sh, attrs=attrs):
        with b.serial_for("t", n_tiles) as t:
            b.copy(sh.full_region(), A.region((t * tile, tile)), is_async=is_async)
            b.copy(out_b.region((t * tile, tile)), sh.full_region())
    return Kernel("stream", [A, out_b], b.finish())


class TestEagerMode:
    def test_streaming_copy(self):
        k = copy_kernel()
        a = np.arange(32, dtype=np.float16)
        out = run_kernel(k, {"A": a}, mode="eager")
        np.testing.assert_array_equal(out["O"], a)

    def test_inputs_not_mutated(self):
        k = copy_kernel()
        a = np.arange(32, dtype=np.float16)
        run_kernel(k, {"A": a}, mode="eager")
        np.testing.assert_array_equal(a, np.arange(32, dtype=np.float16))

    def test_missing_output_nan_filled_then_written(self):
        k = copy_kernel()
        out = run_kernel(k, {"A": np.ones(32, dtype=np.float16)}, mode="eager")
        assert not np.isnan(out["O"].astype(np.float32)).any()

    def test_wrong_input_shape_rejected(self):
        k = copy_kernel()
        with pytest.raises(InterpreterError, match="shape"):
            run_kernel(k, {"A": np.ones(31, dtype=np.float16)}, mode="eager")

    def test_syncs_are_noops_in_eager(self):
        A = Buffer("A", (8,))
        sh = Buffer("sh", (8,), scope=Scope.SHARED)
        b = IRBuilder()
        with b.allocate(sh):
            b.sync(sh, SyncKind.CONSUMER_WAIT)  # would deadlock in pipeline mode
            b.copy(sh.full_region(), A.full_region())
            b.copy(A.full_region(), sh.full_region())
        run_kernel(Kernel("k", [A], b.finish()), {"A": np.ones(8, dtype=np.float16)})

    def test_fused_fn_applied_on_copy(self):
        A = Buffer("A", (8,))
        out_b = Buffer("O", (8,))
        body = MemCopy(out_b.full_region(), A.full_region(), annotations={"fused_fn": "relu"})
        out = run_kernel(
            Kernel("k", [A, out_b], body),
            {"A": np.array([-1, 2, -3, 4, -5, 6, -7, 8], dtype=np.float16)},
        )
        assert out["O"].min() == 0

    def test_compute_without_fn_rejected(self):
        A = Buffer("A", (8,))
        body = ComputeStmt("mystery", A.full_region(), [])
        with pytest.raises(InterpreterError, match="semantics"):
            run_kernel(Kernel("k", [A], body), {"A": np.ones(8, dtype=np.float16)})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_kernel(copy_kernel(), {"A": np.ones(32, dtype=np.float16)}, mode="fast")

    def test_dtype_cast_on_copy(self):
        A = Buffer("A", (4,), dtype="float32")
        out_b = Buffer("O", (4,), dtype="float16")
        body = MemCopy(out_b.full_region(), A.full_region())
        out = run_kernel(Kernel("k", [A, out_b], body), {"A": np.full(4, 1.5, dtype=np.float32)})
        assert out["O"].dtype == np.float16


class TestPipelineMode:
    def test_transformed_stream_correct(self):
        k = apply_pipelining(copy_kernel(is_async=True, stages=3))
        a = np.arange(32, dtype=np.float16)
        out = run_kernel(k, {"A": a}, mode="pipeline")
        np.testing.assert_array_equal(out["O"], a)

    def test_two_stage_stream_correct(self):
        k = apply_pipelining(copy_kernel(is_async=True, stages=2))
        a = np.arange(32, dtype=np.float16)
        out = run_kernel(k, {"A": a}, mode="pipeline")
        np.testing.assert_array_equal(out["O"], a)

    def test_async_copy_without_groups_rejected(self):
        k = copy_kernel(is_async=True)  # no hints -> no groups published
        k.attrs["pipeline_groups"] = []
        with pytest.raises(PipelineHazardError, match="pipelining pass"):
            run_kernel(k, {"A": np.ones(32, dtype=np.float16)}, mode="pipeline")

    def test_wait_with_empty_pipeline_deadlocks(self):
        A = Buffer("A", (8,))
        sh = Buffer("sh", (2, 8), scope=Scope.SHARED)
        from repro.transform.pipeline_pass import PipelineGroupInfo

        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": 2, "pipelined": True}):
            b.sync(sh, SyncKind.CONSUMER_WAIT)
            b.copy(A.full_region(), sh.region((0, 1), (0, 8)))
        k = Kernel("k", [A], b.finish())
        k.attrs["pipeline_groups"] = [
            PipelineGroupInfo(sh, [sh], Scope.SHARED, 2, "t", 4)
        ]
        with pytest.raises(PipelineHazardError, match="deadlock"):
            run_kernel(k, {"A": np.ones(8, dtype=np.float16)}, mode="pipeline")

    def test_commit_without_acquire_rejected(self):
        A = Buffer("A", (8,))
        sh = Buffer("sh", (2, 8), scope=Scope.SHARED)
        from repro.transform.pipeline_pass import PipelineGroupInfo

        b = IRBuilder()
        with b.allocate(sh, attrs={"pipeline_stages": 2, "pipelined": True}):
            b.sync(sh, SyncKind.PRODUCER_COMMIT)
            b.copy(A.full_region(), sh.region((0, 1), (0, 8)))
        k = Kernel("k", [A], b.finish())
        k.attrs["pipeline_groups"] = [
            PipelineGroupInfo(sh, [sh], Scope.SHARED, 2, "t", 4)
        ]
        with pytest.raises(PipelineHazardError, match="acquire"):
            run_kernel(k, {"A": np.ones(8, dtype=np.float16)}, mode="pipeline")

    def test_reading_unwaited_data_poisons_output(self):
        """If consumer_wait is removed, the consumer reads the NaN-filled
        buffer instead of the staged (not yet applied) copy."""
        k = apply_pipelining(copy_kernel(is_async=True, stages=2))

        from repro.ir import StmtMutator

        class DropWaits(StmtMutator):
            def visit_pipelinesync(self, s):
                if s.kind in (SyncKind.CONSUMER_WAIT, SyncKind.CONSUMER_RELEASE):
                    return None
                return s

        broken = DropWaits().mutate_kernel(k)
        try:
            out = run_kernel(broken, {"A": np.arange(32, dtype=np.float16)}, mode="pipeline")
        except PipelineHazardError:
            return  # detected as a protocol violation — equally observable
        assert np.isnan(out["O"].astype(np.float32)).any()

    def test_determinism_bitwise(self):
        k = apply_pipelining(copy_kernel(is_async=True, stages=3))
        a = np.random.default_rng(0).standard_normal(32).astype(np.float16)
        o1 = run_kernel(k, {"A": a}, mode="pipeline")["O"]
        o2 = run_kernel(k, {"A": a}, mode="pipeline")["O"]
        np.testing.assert_array_equal(o1, o2)

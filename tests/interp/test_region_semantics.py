"""Fine-grained interpreter semantics: region views, squeezing, dtypes."""

import numpy as np
import pytest

from repro.interp import InterpreterError, run_kernel
from repro.ir import Buffer, ComputeStmt, IRBuilder, Kernel, MemCopy, Scope


class TestRegionViews:
    def test_extent_one_dims_squeezed_for_compute(self):
        """A 3D region with a unit leading extent presents as 2D to fn."""
        W = Buffer("W", (2, 4, 4))
        out_b = Buffer("O", (4, 4))
        seen = {}

        def grab(out, src):
            seen["shape"] = src.shape
            out[...] = src

        body = ComputeStmt(
            "grab",
            out_b.full_region(),
            [W.region((1, 1), (0, 4), (0, 4))],
            fn=grab,
            annotations={"accumulate": False},
        )
        w = np.arange(32, dtype=np.float16).reshape(2, 4, 4)
        out = run_kernel(Kernel("k", [W, out_b], body), {"W": w})
        assert seen["shape"] == (4, 4)
        np.testing.assert_array_equal(out["O"], w[1])

    def test_copy_reshapes_between_ranks(self):
        """dst and src regions of equal volume but different shapes work."""
        A = Buffer("A", (16,))
        B2 = Buffer("B2", (4, 4))
        body = MemCopy(B2.full_region(), A.full_region())
        out = run_kernel(Kernel("k", [A, B2], body), {"A": np.arange(16, dtype=np.float16)})
        np.testing.assert_array_equal(out["B2"].ravel(), np.arange(16))

    def test_out_of_bounds_read_raises(self):
        A = Buffer("A", (8,))
        out_b = Buffer("O", (8,))
        b = IRBuilder()
        with b.serial_for("t", 3) as t:
            b.copy(out_b.region((0, 4)), A.region((t * 3, 4)))  # t=2 -> [6, 10)
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_kernel(Kernel("k", [A, out_b], b.finish()), {"A": np.zeros(8, dtype=np.float16)})

    def test_out_view_mutation_lands_in_buffer(self):
        """ComputeStmt's out view must be a real view (no copies)."""
        out_b = Buffer("O", (2, 8))

        def write_row(out):
            out[...] = 7.0

        body = ComputeStmt(
            "row", out_b.region((1, 1), (0, 8)), [], fn=write_row, annotations={"accumulate": False}
        )
        out = run_kernel(Kernel("k", [out_b], body), {})
        np.testing.assert_array_equal(out["O"][1], 7.0)
        assert np.isnan(out["O"][0].astype(np.float32)).all()  # untouched row stays poisoned

    def test_integer_buffers_use_sentinel_not_nan(self):
        I32 = Buffer("I", (4,), dtype="int32")
        out = run_kernel(Kernel("k", [I32], ComputeStmt(
            "noop", I32.full_region(), [], fn=lambda o: None, annotations={"accumulate": False}
        )), {})
        assert (out["I"] == -(2**30)).all()

    def test_accumulator_precision_preserved(self):
        """fp32 accumulation must not round through fp16 mid-loop."""
        A = Buffer("A", (1,))
        out_b = Buffer("O", (1,), dtype="float32")
        acc = Buffer("acc", (1,), dtype="float32", scope=Scope.ACCUMULATOR)

        def init(out):
            out[...] = 2048.0  # fp16 rounds 2048 + 1 -> 2048

        def add_one(out, _):
            out += 1.0

        b = IRBuilder()
        with b.allocate(acc):
            b.compute("init", acc.full_region(), [], fn=init, accumulate=False)
            with b.serial_for("i", 4):
                b.compute("inc", acc.full_region(), [A.full_region()], fn=add_one)
            b.copy(out_b.full_region(), acc.full_region())
        out = run_kernel(Kernel("k", [A, out_b], b.finish()), {"A": np.zeros(1, dtype=np.float16)})
        assert out["O"][0] == 2052.0

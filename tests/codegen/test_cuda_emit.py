"""Structural tests for the CUDA source backend."""

import re

import pytest

from repro.codegen import CudaEmitError, emit_cuda, lower
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder
from repro.transform import apply_pipelining


def build(m=64, n=64, k=128, batch=1, ss=3, rs=2, pipelined=True):
    spec = GemmSpec("cu", batch, m, n, k)
    a_shape = (batch, m, k) if batch > 1 else (m, k)
    b_shape = (batch, n, k) if batch > 1 else (n, k)
    a = placeholder("A", a_shape)
    b = placeholder("B", b_shape)
    c = contraction(a, b, spec)
    cfg = TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16, smem_stages=ss, reg_stages=rs)
    kernel = lower(auto_schedule(c, cfg))
    if pipelined:
        kernel = apply_pipelining(kernel)
    return kernel


class TestStructure:
    def test_braces_balanced(self):
        src = emit_cuda(build())
        assert src.count("{") == src.count("}")
        assert src.count("(") == src.count(")")

    def test_kernel_signature(self):
        src = emit_cuda(build())
        assert 'extern "C" __global__ void gemm_cu(' in src
        assert "const half* __restrict__ A" in src
        assert "half* __restrict__ C" in src

    def test_deterministic(self):
        assert emit_cuda(build()) == emit_cuda(build())

    def test_block_bindings(self):
        src = emit_cuda(build())
        assert "blockIdx.x" in src and "blockIdx.y" in src

    def test_batched_uses_third_grid_dim(self):
        src = emit_cuda(build(batch=2, m=32, n=32, k=64))
        assert "blockIdx.z" in src

    def test_warp_vars_declared_before_use(self):
        src = emit_cuda(build())
        for name in ("wm", "wn", "ki", "ko"):
            decl = re.search(rf"(const )?int {name}\b", src)
            assert decl, name


class TestPipelineMapping:
    def test_cp_async_only_when_pipelined(self):
        piped = emit_cuda(build(ss=3))
        plain = emit_cuda(build(ss=1, rs=1))
        assert "cuda::memcpy_async" in piped
        assert "cuda::memcpy_async" not in plain
        assert "cooperative copy" in plain

    def test_pipeline_object_created_once_per_group(self):
        src = emit_cuda(build())
        assert src.count("cuda::make_pipeline()") == 1  # one smem group
        assert "3-stage pipeline over {A_shared, B_shared}" in src

    def test_all_four_primitives_emitted(self):
        src = emit_cuda(build())
        for call in ("producer_acquire", "producer_commit", "consumer_wait", "consumer_release"):
            assert call in src, call

    def test_consumer_sync_has_barrier(self):
        src = emit_cuda(build())
        assert "consumer_wait(); __syncthreads();" in src

    def test_register_pipeline_is_scheduling_comment(self):
        src = emit_cuda(build(rs=2))
        assert "// reg-pipeline" in src

    def test_shifted_indices_in_source(self):
        src = emit_cuda(build())
        assert "(ko + 2) % 3" in src  # stage roll of the 3-stage pipeline
        assert "(ko + ((ki + 1) / 2)) % 3" in src  # fused inner carry


class TestIntrinsics:
    def test_wmma_ops_present(self):
        src = emit_cuda(build())
        assert "wmma::load_matrix_sync" in src
        assert "wmma::mma_sync" in src
        assert "wmma::store_matrix_sync" in src
        assert "wmma::fill_fragment" in src

    def test_shared_memory_accounting(self):
        src = emit_cuda(build(ss=3))
        # two 3-stage 32x32 fp16 buffers = 2 * 3 * 2048 bytes
        assert "// dynamic shared memory: 12288 bytes" in src

    def test_epilogue_fusion_annotated(self):
        from repro.tensor import elementwise

        spec = GemmSpec("cu_epi", 1, 32, 32, 64)
        a = placeholder("A", (32, 64))
        b = placeholder("B", (32, 64))
        out = elementwise(contraction(a, b, spec), "relu")
        cfg = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=2, reg_stages=1)
        src = emit_cuda(apply_pipelining(lower(auto_schedule(out, cfg))))
        assert "fused epilogue: ('relu',)" in src

    def test_async_without_group_rejected(self):
        kernel = build(ss=3)
        kernel.attrs["pipeline_groups"] = []
        with pytest.raises(CudaEmitError, match="pipeline"):
            emit_cuda(kernel)

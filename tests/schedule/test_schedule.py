"""Tests for Schedule primitives, detection rules and ordering (Sec. II)."""

import pytest

from repro.ir.buffer import Scope
from repro.schedule import (
    RULE_ASYNC,
    RULE_SEQ_LOOP,
    RULE_SYNC_POS,
    OrderingError,
    PipelineRejected,
    Schedule,
    ScheduleError,
    TileConfig,
    auto_schedule,
    check_pipelinable,
    verify_log_order,
)
from repro.tensor import GemmSpec, contraction, elementwise, placeholder


def make_graph(m=256, n=256, k=512, batch=1, a_elementwise=None):
    spec = GemmSpec("mm", batch, m, n, k)
    a_shape = (batch, m, k) if batch > 1 else (m, k)
    b_shape = (batch, n, k) if batch > 1 else (n, k)
    a = placeholder("A", a_shape)
    b = placeholder("B", b_shape)
    if a_elementwise:
        a = elementwise(a, a_elementwise, name="A_f")
    c = contraction(a, b, spec)
    return a, b, c


CFG = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)


class TestCacheRead:
    def test_chain_extension(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        rf = sch.cache_read(sh, Scope.REGISTER)
        assert [t.name for t in sch.chain("a")] == ["A", "A_shared", "A_reg"]
        assert sch.producer_of(rf) is sh
        assert sch.consumer_of(sh) is rf

    def test_global_scope_rejected(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        with pytest.raises(ScheduleError):
            sch.cache_read(a, Scope.GLOBAL)

    def test_must_extend_tail(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sch.cache_read(a, Scope.SHARED)
        with pytest.raises(ScheduleError):
            sch.cache_read(a, Scope.REGISTER)  # A already has a consumer buffer

    def test_unknown_tensor_rejected(self):
        a, b, c = make_graph()
        other = placeholder("X", (4, 4))
        with pytest.raises(ScheduleError):
            Schedule(c).cache_read(other, Scope.SHARED)


class TestDetectionRule1:
    def test_placeholder_not_pipelinable(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sch.tile(CFG)
        chk = check_pipelinable(sch, a, 3)
        assert not chk.ok and chk.rule == RULE_ASYNC

    def test_shared_buffer_ok(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        assert check_pipelinable(sch, sh, 3).ok

    def test_register_requires_shared_source(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        # register cache read directly from global: async source mismatch
        rf = sch.cache_read(a, Scope.REGISTER)
        sch.tile(CFG)
        chk = check_pipelinable(sch, rf, 2)
        assert not chk.ok and chk.rule == RULE_ASYNC

    def test_fused_copy_rejected(self):
        """Fig. 5 case 1: inlining first makes the copy non-async."""
        a, b, c = make_graph(a_elementwise="cast_f16")
        sch = Schedule(c)
        sh = sch.cache_read(sch.chain("a")[-1], Scope.SHARED)
        sch.tile(CFG)
        sch.inline(sch.chain("a")[0])  # inline elementwise into the copy
        new_sh = sch.chain("a")[-1]
        chk = check_pipelinable(sch, new_sh, 3)
        assert not chk.ok and chk.rule == RULE_ASYNC

    def test_one_stage_rejected(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        assert not check_pipelinable(sch, sh, 1).ok


class TestDetectionRule2:
    def test_no_tiling_rejected(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        chk = check_pipelinable(sch, sh, 3)
        assert not chk.ok and chk.rule == RULE_SEQ_LOOP

    def test_short_reduction_rejected(self):
        """K == block_k: the load-and-use loop has extent 1 (filled once)."""
        a, b, c = make_graph(k=32)
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        chk = check_pipelinable(sch, sh, 3)
        assert not chk.ok and chk.rule == RULE_SEQ_LOOP

    def test_non_contraction_graph_rejected(self):
        """Stencil-like pure copy graph: buffer used once, rule 2 fails."""
        x = placeholder("X", (64, 64))
        sch = Schedule(x)
        sh = sch.cache_read(x, Scope.SHARED)
        chk = check_pipelinable(sch, sh, 2)
        assert not chk.ok and chk.rule == RULE_SEQ_LOOP

    def test_register_chunk_equal_block_k_rejected(self):
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=32)
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        rf = sch.cache_read(sh, Scope.REGISTER)
        sch.tile(cfg)
        chk = check_pipelinable(sch, rf, 2)
        assert not chk.ok and chk.rule == RULE_SEQ_LOOP


class TestDetectionRule3:
    def test_mismatched_stage_counts_same_scope(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        a_sh = sch.cache_read(a, Scope.SHARED)
        b_sh = sch.cache_read(b, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(a_sh, 3)
        chk = check_pipelinable(sch, b_sh, 4)
        assert not chk.ok and chk.rule == RULE_SYNC_POS

    def test_matching_stage_counts_ok(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        a_sh = sch.cache_read(a, Scope.SHARED)
        b_sh = sch.cache_read(b, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(a_sh, 3)
        assert check_pipelinable(sch, b_sh, 3).ok

    def test_different_scopes_independent(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        a_sh = sch.cache_read(a, Scope.SHARED)
        a_rf = sch.cache_read(a_sh, Scope.REGISTER)
        sch.tile(CFG)
        sch.pipeline(a_sh, 3)
        assert check_pipelinable(sch, a_rf, 2).ok


class TestPipelinePrimitive:
    def test_strict_raises(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sch.tile(CFG)
        with pytest.raises(PipelineRejected):
            sch.pipeline(a, 3)

    def test_non_strict_skips(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sch.tile(CFG)
        chk = sch.pipeline(a, 3, strict=False)
        assert not chk.ok
        assert a not in sch.pipeline_marks

    def test_double_pipeline_raises(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(sh, 3)
        with pytest.raises(OrderingError):
            sch.pipeline(sh, 3)

    def test_stages_recorded(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(sh, 4)
        assert sch.stages_for(sh) == 4
        assert sch.stages_for(a) == 1


class TestOrdering:
    def test_cache_read_after_pipeline_rejected(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(sh, 3)
        with pytest.raises(OrderingError):
            sch.cache_read(b, Scope.SHARED)

    def test_tile_after_pipeline_rejected(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        sh = sch.cache_read(a, Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(sh, 3)
        with pytest.raises(OrderingError):
            sch.tile(CFG)

    def test_log_order_clean_for_auto_schedule(self):
        a, b, c = make_graph()
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        assert verify_log_order(sch) == []


class TestInline:
    def test_inline_before_pipeline_goes_into_copy(self):
        a_f, b, c = make_graph(a_elementwise="relu")
        sch = Schedule(c)
        sh = sch.cache_read(sch.chain("a")[-1], Scope.SHARED)
        sch.tile(CFG)
        route = sch.inline(sch.chain("a")[0])
        assert route == "into-copy"
        new_sh = sch.chain("a")[-1]
        assert new_sh.op.fused_fn_name == "relu"
        assert sch.operand_fused_fn["a"] is None

    def test_inline_after_pipeline_goes_into_consumer(self):
        """Fig. 5 case 2: the copy stays asynchronous and pipelined."""
        a_f, b, c = make_graph(a_elementwise="relu")
        sch = Schedule(c)
        sh = sch.cache_read(sch.chain("a")[-1], Scope.SHARED)
        sch.tile(CFG)
        sch.pipeline(sh, 3)
        route = sch.inline(sch.chain("a")[0])
        assert route == "into-consumer"
        new_sh = sch.chain("a")[-1]
        assert new_sh.op.is_pure_copy
        assert new_sh in sch.pipeline_marks
        assert sch.operand_fused_fn["a"] == "relu"
        # chain now sources from the raw placeholder
        assert sch.chain("a")[0].name == "A"

    def test_inline_requires_elementwise(self):
        a, b, c = make_graph()
        sch = Schedule(c)
        with pytest.raises(ScheduleError):
            sch.inline(a)


class TestAutoSchedule:
    def test_full_pipeline_schedule(self):
        a, b, c = make_graph()
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        names = {t.name: s for t, s in sch.pipeline_marks.items()}
        assert names == {"A_shared": 3, "B_shared": 3, "A_reg": 2, "B_reg": 2}

    def test_stages_one_means_no_marks(self):
        a, b, c = make_graph()
        sch = auto_schedule(c, CFG)
        assert sch.pipeline_marks == {}

    def test_short_reduction_skips_smem_pipeline(self):
        a, b, c = make_graph(k=32)
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        scopes = {t.scope for t in sch.pipeline_marks}
        assert Scope.SHARED not in scopes  # rule 2 rejected, silently skipped

    def test_elementwise_producer_still_pipelined(self):
        a_f, b, c = make_graph(a_elementwise="cast_f16")
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        assert sch.operand_fused_fn["a"] == "cast_f16"
        assert len(sch.pipeline_marks) == 4

    def test_describe_mentions_pipeline(self):
        a, b, c = make_graph()
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        text = sch.describe()
        assert "pipeline: A_shared stages=3" in text

    def test_pipelined_buffers_order_smem_first(self):
        a, b, c = make_graph()
        sch = auto_schedule(c, CFG.with_stages(3, 2))
        scopes = [t.scope for t in sch.pipelined_buffers()]
        assert scopes == [Scope.SHARED, Scope.SHARED, Scope.REGISTER, Scope.REGISTER]

"""Property-based tests for schedule invariants (hypothesis)."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.ir.buffer import Scope
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder


@st.composite
def tile_configs(draw):
    bm = draw(st.sampled_from([16, 32, 64, 128]))
    bn = draw(st.sampled_from([16, 32, 64, 128]))
    bk = draw(st.sampled_from([16, 32, 64]))
    wm = draw(st.sampled_from([w for w in (16, 32, 64) if bm % w == 0]))
    wn = draw(st.sampled_from([w for w in (16, 32, 64) if bn % w == 0]))
    ck = draw(st.sampled_from([c for c in (8, 16, 32) if bk % c == 0]))
    ss = draw(st.integers(1, 4))
    rs = draw(st.integers(1, 2))
    return TileConfig(bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=ck, smem_stages=ss, reg_stages=rs)


@st.composite
def problems(draw):
    m = draw(st.sampled_from([128, 256, 512]))
    n = draw(st.sampled_from([128, 256, 512]))
    k = draw(st.sampled_from([64, 128, 512, 2048]))
    return GemmSpec("prop", 1, m, n, k)


def _graph(spec):
    a = placeholder("A", (spec.m, spec.k))
    b = placeholder("B", (spec.n, spec.k))
    return contraction(a, b, spec)


@settings(max_examples=40, deadline=None)
@given(spec=problems(), cfg=tile_configs())
def test_auto_schedule_marks_respect_rules(spec, cfg):
    """Every pipeline mark an auto-schedule makes must satisfy the three
    detection rules, and no rejected buffer may carry a mark."""

    sch = auto_schedule(_graph(spec), cfg)
    for buf, stages in sch.pipeline_marks.items():
        assert stages >= 2
        # Rule 2 in particular: the load-and-use loop is genuinely sequential.
        assert sch.load_loop_extent(buf) > 1
    # smem marks never exist when the reduction fits one block tile
    if spec.k <= cfg.block_k:
        assert all(t.scope is not Scope.SHARED for t in sch.pipeline_marks)
    # reg marks never exist when the chunk covers the whole block_k
    if cfg.chunk_k == cfg.block_k:
        assert all(t.scope is not Scope.REGISTER for t in sch.pipeline_marks)


@settings(max_examples=25, deadline=None)
@given(spec=problems(), cfg=tile_configs())
def test_lower_pipeline_roundtrip_validates(spec, cfg):
    """Everything the auto-scheduler accepts must lower and transform into
    well-formed IR whose timing spec matches the static derivation."""
    from repro.codegen import lower
    from repro.gpusim import extract_timing_spec
    from repro.ir import validate_kernel
    from repro.perfmodel import timing_spec_from_config
    from repro.transform import apply_pipelining

    if spec.m % cfg.block_m or spec.n % cfg.block_n or spec.k % cfg.block_k:
        return  # untileable combination: lowering rejects it by contract
    kernel = apply_pipelining(lower(auto_schedule(_graph(spec), cfg)))
    validate_kernel(kernel)
    # The transformation's shifted/wrapped indices are statically in bounds.
    from repro.transform import verify_in_bounds

    assert verify_in_bounds(kernel) > 0
    ext = extract_timing_spec(kernel)
    st_spec = timing_spec_from_config(spec, cfg)
    for f in dataclasses.fields(ext):
        if f.name == "name":
            continue
        assert getattr(ext, f.name) == getattr(st_spec, f.name), f.name


@settings(max_examples=20, deadline=None)
@given(cfg=tile_configs(), k_mult=st.integers(2, 8))
def test_simulator_monotone_in_reduction_length(cfg, k_mult):
    """More reduction work never takes less simulated time."""
    from repro.gpusim import CompileError, simulate_kernel
    from repro.perfmodel import timing_spec_from_config

    short = GemmSpec("short", 1, 256, 256, cfg.block_k * 2)
    longer = GemmSpec("long", 1, 256, 256, cfg.block_k * 2 * k_mult)
    if 256 % cfg.block_m or 256 % cfg.block_n:
        return
    try:
        t_short = simulate_kernel(timing_spec_from_config(short, cfg)).latency_us
        t_long = simulate_kernel(timing_spec_from_config(longer, cfg)).latency_us
    except CompileError:
        return
    assert t_long >= t_short

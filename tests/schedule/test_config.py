"""Tests for TileConfig geometry and resource math."""

import pytest
from hypothesis import given, strategies as st

from repro.schedule import TileConfig
from repro.tensor import GemmSpec


def _cfg(**kw):
    base = dict(block_m=64, block_n=64, block_k=32, warp_m=32, warp_n=32, chunk_k=16)
    base.update(kw)
    return TileConfig(**base)


class TestValidation:
    def test_valid(self):
        c = _cfg(smem_stages=3, reg_stages=2)
        assert c.warps_per_block == 4

    def test_block_not_divisible_by_warp(self):
        with pytest.raises(ValueError):
            _cfg(warp_m=48)

    def test_block_k_not_divisible_by_chunk(self):
        with pytest.raises(ValueError):
            _cfg(chunk_k=24)

    def test_stage_bounds(self):
        with pytest.raises(ValueError):
            _cfg(smem_stages=0)
        with pytest.raises(ValueError):
            _cfg(smem_stages=9)
        with pytest.raises(ValueError):
            _cfg(reg_stages=3)

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            _cfg(block_m=-64)


class TestGeometry:
    def test_threads(self):
        assert _cfg().threads_per_block == 4 * 32

    def test_reg_loop_extent(self):
        assert _cfg(block_k=64, chunk_k=16).reg_loop_extent == 4

    def test_grid_size_exact(self):
        spec = GemmSpec("mm", 1, 256, 128, 512)
        assert _cfg().grid_size(spec) == (256 // 64) * (128 // 64)

    def test_grid_size_ceil(self):
        spec = GemmSpec("mm", 1, 100, 100, 512)
        assert _cfg().grid_size(spec) == 2 * 2

    def test_grid_size_batched(self):
        spec = GemmSpec("bmm", 8, 64, 64, 512)
        assert _cfg().grid_size(spec) == 8

    def test_smem_loop_extent(self):
        spec = GemmSpec("mm", 1, 64, 64, 512)
        assert _cfg(block_k=32).smem_loop_extent(spec) == 16


class TestResources:
    def test_smem_scales_with_stages(self):
        r1 = _cfg(smem_stages=1).resource_usage()
        r3 = _cfg(smem_stages=3).resource_usage()
        assert r3.smem_bytes == 3 * r1.smem_bytes

    def test_smem_value(self):
        r = _cfg(smem_stages=1).resource_usage("float16")
        assert r.smem_bytes == (64 + 64) * 32 * 2

    def test_regs_grow_with_reg_stages(self):
        r1 = _cfg(reg_stages=1).resource_usage()
        r2 = _cfg(reg_stages=2).resource_usage()
        assert r2.regs_per_thread > r1.regs_per_thread

    def test_regs_per_block(self):
        r = _cfg().resource_usage()
        assert r.regs_per_block == r.regs_per_thread * 128


class TestHelpers:
    def test_with_stages(self):
        c = _cfg().with_stages(4, 2)
        assert c.smem_stages == 4 and c.reg_stages == 2
        assert c.block_m == 64

    def test_key_hashable_and_distinct(self):
        assert _cfg().key() != _cfg(smem_stages=2).key()
        {_cfg().key(): 1}

    def test_str(self):
        assert "TB(64x64x32)" in str(_cfg())


@given(
    bm=st.sampled_from([32, 64, 128]),
    bn=st.sampled_from([32, 64, 128]),
    bk=st.sampled_from([16, 32, 64]),
    stages=st.integers(1, 4),
)
def test_resource_monotone_in_tile(bm, bn, bk, stages):
    cfg = TileConfig(bm, bn, bk, warp_m=min(32, bm), warp_n=min(32, bn),
                     chunk_k=16 if bk >= 16 else bk, smem_stages=stages)
    r = cfg.resource_usage()
    assert r.smem_bytes == (bm + bn) * bk * 2 * stages
    assert r.regs_per_thread > 0

"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP-517
editable installs; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (or ``python setup.py develop``) work there. All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
